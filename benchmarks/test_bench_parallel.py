"""Serial-vs-parallel executor benchmark.

Measures the end-to-end wall clock of the serial find-relation runner
against the partitioned parallel executor on a ≥5k-pair scenario, and
the serial vs fanned-out APRIL preprocessing, asserting identical
results in both cases. Every run appends an entry to the
``BENCH_parallel.json`` trajectory at the repo root, so speedup is
tracked across commits and machines (the recorded ``cpu_count`` makes
single-core containers — where true parallel speedup is physically
impossible and only the overhead shows — interpretable).
"""

import os
import time
from pathlib import Path

import pytest

from repro.datasets import load_scenario
from repro.join.batch import run_find_relation_batch_outcomes
from repro.join.pipeline import run_find_relation
from repro.parallel import build_april_parallel, run_find_relation_parallel
from repro.raster import build_april

SCENARIO = "OBE-OPE"
SCALE = 5.0
GRID_ORDER = 10
WORKERS = 4
ROUNDS = 2

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_parallel.json"


def record(entry: dict) -> None:
    from conftest import record_entry

    record_entry(BENCH_PATH, entry)


@pytest.fixture(scope="module")
def scenario():
    data = load_scenario(SCENARIO, scale=SCALE, grid_order=GRID_ORDER)
    assert len(data.pairs) >= 5000, "benchmark needs a >=5k-pair stream"
    return data


def test_parallel_find_relation_speedup(scenario):
    serial_seconds = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        serial = run_find_relation(
            "P+C", scenario.r_objects, scenario.s_objects, scenario.pairs
        )
        serial_seconds = min(serial_seconds, time.perf_counter() - t0)

    batch_seconds = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        _outcomes, batch_stats = run_find_relation_batch_outcomes(
            scenario.r_objects, scenario.s_objects, scenario.pairs
        )
        batch_seconds = min(batch_seconds, time.perf_counter() - t0)

    parallel_seconds = float("inf")
    for _ in range(ROUNDS):
        run = run_find_relation_parallel(
            "P+C", scenario.r_objects, scenario.s_objects, scenario.pairs,
            workers=WORKERS,
        )
        parallel_seconds = min(parallel_seconds, run.wall_seconds)

    # Acceptance: identical relation counts for every worker count.
    assert run.stats.relation_counts == serial.relation_counts
    assert run.stats.pairs == serial.pairs == len(scenario.pairs)
    assert run.stats.r_objects_accessed == serial.r_objects_accessed
    assert run.stats.s_objects_accessed == serial.s_objects_accessed
    assert batch_stats.relation_counts == serial.relation_counts

    speedup = serial_seconds / parallel_seconds
    record(
        {
            "kind": "find_relation",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "scenario": SCENARIO,
            "scale": SCALE,
            "grid_order": GRID_ORDER,
            "pairs": len(scenario.pairs),
            "workers": WORKERS,
            "cpu_count": os.cpu_count(),
            "serial_seconds": round(serial_seconds, 4),
            # The vectorised batch runner, timed in its own right: the
            # number calibration's bench seeding uses for the batch mode
            # (it used to copy serial's, leaving auto unable to pick batch).
            "batch_seconds": round(batch_seconds, 4),
            "parallel_seconds": round(parallel_seconds, 4),
            "speedup": round(speedup, 3),
            "relation_counts_identical": True,
        }
    )
    # True parallel speedup needs real cores; on fewer the entry above
    # still tracks the (bounded) overhead of the partitioned path.
    if (os.cpu_count() or 1) >= 4:
        assert speedup > 1.5
    elif (os.cpu_count() or 1) >= 2:
        assert speedup > 1.0
    else:
        assert parallel_seconds < 3.0 * serial_seconds


def test_parallel_preprocessing_speedup(scenario):
    polygons = [o.polygon for o in scenario.s_objects]

    t0 = time.perf_counter()
    serial = [build_april(p, scenario.grid) for p in polygons]
    serial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = build_april_parallel(polygons, scenario.grid, workers=WORKERS)
    parallel_seconds = time.perf_counter() - t0

    assert len(parallel) == len(serial)
    assert all(a.p == b.p and a.c == b.c for a, b in zip(serial, parallel))

    record(
        {
            "kind": "preprocess",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "scenario": SCENARIO,
            "scale": SCALE,
            "grid_order": GRID_ORDER,
            "polygons": len(polygons),
            "workers": WORKERS,
            "cpu_count": os.cpu_count(),
            "serial_seconds": round(serial_seconds, 4),
            "parallel_seconds": round(parallel_seconds, 4),
            "speedup": round(serial_seconds / parallel_seconds, 3),
        }
    )
