"""The enhanced MBR filter (paper Sec. 3.1, Fig. 4).

Given the MBRs of two shapes ``r`` and ``s``, the way the MBRs intersect
constrains the possible topological relations between the shapes:

- **DISJOINT** MBRs — the shapes are definitely disjoint.
- **EQUAL** MBRs (Fig. 4c) — candidates {equals, covered by, covers,
  meets, intersects}. *disjoint is impossible*: two connected shapes
  each touching all four sides of the same rectangle must intersect
  (one spans it horizontally, the other vertically).
- **R_INSIDE_S** (Fig. 4a) — candidates {disjoint, inside, covered by,
  meets, intersects}; r cannot equal, contain or cover s.
- **R_CONTAINS_S** (Fig. 4b) — the mirror case.
- **CROSS** (Fig. 4d) — plus-sign arrangement; the shapes definitely
  intersect (the spanning argument again) and no more specific relation
  is possible, so neither intermediate filter nor refinement is needed.
- **OVERLAP** (Fig. 4e) — every other intersection; candidates
  {disjoint, meets, intersects} (containment of either shape would force
  MBR containment).
"""

from __future__ import annotations

import enum

from repro.geometry.box import Box
from repro.topology.de9im import TopologicalRelation as T


class MBRRelationship(enum.Enum):
    """How two MBRs intersect (Fig. 4 cases)."""

    DISJOINT = "disjoint"
    EQUAL = "equal"
    R_INSIDE_S = "r inside s"
    R_CONTAINS_S = "r contains s"
    CROSS = "cross"
    OVERLAP = "overlap"


def classify_mbr_pair(r: Box, s: Box) -> MBRRelationship:
    """Classify the MBR pair into one of the Fig. 4 cases.

    Containment is non-strict (an MBR touching its container's border
    still belongs to the INSIDE/CONTAINS case); equality is checked
    first so the EQUAL case is unambiguous.
    """
    if r.disjoint(s):
        return MBRRelationship.DISJOINT
    if r == s:
        return MBRRelationship.EQUAL
    if s.contains_box(r):
        return MBRRelationship.R_INSIDE_S
    if r.contains_box(s):
        return MBRRelationship.R_CONTAINS_S
    if r.crosses(s):
        return MBRRelationship.CROSS
    return MBRRelationship.OVERLAP


#: Candidate topological relations per MBR case (Fig. 4). For CROSS the
#: single candidate is also definite.
MBR_CANDIDATES: dict[MBRRelationship, tuple[T, ...]] = {
    MBRRelationship.DISJOINT: (T.DISJOINT,),
    MBRRelationship.EQUAL: (T.EQUALS, T.COVERED_BY, T.COVERS, T.MEETS, T.INTERSECTS),
    MBRRelationship.R_INSIDE_S: (T.DISJOINT, T.INSIDE, T.COVERED_BY, T.MEETS, T.INTERSECTS),
    MBRRelationship.R_CONTAINS_S: (T.DISJOINT, T.CONTAINS, T.COVERS, T.MEETS, T.INTERSECTS),
    MBRRelationship.CROSS: (T.INTERSECTS,),
    MBRRelationship.OVERLAP: (T.DISJOINT, T.MEETS, T.INTERSECTS),
}


def mbr_candidates(r: Box, s: Box) -> tuple[T, ...]:
    """The candidate relations of a pair, from its MBRs alone."""
    return MBR_CANDIDATES[classify_mbr_pair(r, s)]


def mbr_candidates_for(case: MBRRelationship, connected: bool = True) -> tuple[T, ...]:
    """Candidate relations for an MBR case, honouring connectivity.

    The EQUAL and CROSS exclusions of Fig. 4 rest on a spanning
    argument that holds only for connected shapes; for multipolygon
    inputs those cases keep *disjoint* (and *meets*, for CROSS) among
    the candidates. All other cases are connectivity-free.
    """
    candidates = MBR_CANDIDATES[case]
    if connected:
        return candidates
    if case is MBRRelationship.EQUAL:
        return candidates + (T.DISJOINT,)
    if case is MBRRelationship.CROSS:
        return (T.DISJOINT, T.MEETS, T.INTERSECTS)
    return candidates


__all__ = [
    "MBRRelationship",
    "MBR_CANDIDATES",
    "classify_mbr_pair",
    "mbr_candidates",
    "mbr_candidates_for",
]
