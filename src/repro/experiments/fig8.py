"""Table 4 and Figure 8 — scalability with object-pair complexity.

The OLE-OPE candidate pairs are split into 10 complexity levels of
(approximately) equal population, where a pair's complexity is the sum
of its two polygons' vertex counts (Table 4). Then:

- Fig. 8(a): % of pairs P+C leaves undetermined, per level. Expected
  shape: falls steeply with complexity (paper: ~80% at level 1, ~5% at
  level 10) — simple objects raster to few/no full cells, complex ones
  to plenty.
- Fig. 8(b): total time per level of OP2's refinement (OP2-REF), the
  P+C intermediate filter (P+C-IF), and P+C's residual refinement
  (P+C-REF). Expected shape: OP2-REF grows superlinearly; the P+C
  total stays nearly flat because fewer and fewer pairs are refined.
"""

from __future__ import annotations

from functools import lru_cache

from repro.datasets.catalog import DEFAULT_GRID_ORDER, ScenarioData, load_scenario
from repro.experiments.common import ExperimentResult
from repro.join.pipeline import run_find_relation
from repro.join.stats import JoinRunStats

NUM_LEVELS = 10
DEFAULT_SCENARIO = "OLE-OPE"


def pair_complexity(data: ScenarioData, pair: tuple[int, int]) -> int:
    """The paper's complexity measure: total vertices of the pair."""
    i, j = pair
    return data.r_objects[i].num_vertices + data.s_objects[j].num_vertices


@lru_cache(maxsize=4)
def _levels(
    scenario: str, scale: float, grid_order: int
) -> tuple[ScenarioData, list[list[tuple[int, int]]], list[tuple[int, int]]]:
    """Split a scenario's pairs into equal-population complexity levels.

    Returns the scenario, the per-level pair lists, and the per-level
    (min, max) complexity ranges.
    """
    data = load_scenario(scenario, scale, grid_order)
    ranked = sorted(data.pairs, key=lambda pair: pair_complexity(data, pair))
    n = len(ranked)
    levels: list[list[tuple[int, int]]] = []
    ranges: list[tuple[int, int]] = []
    for level in range(NUM_LEVELS):
        chunk = ranked[level * n // NUM_LEVELS : (level + 1) * n // NUM_LEVELS]
        if not chunk:
            chunk = []
        levels.append(chunk)
        if chunk:
            ranges.append(
                (pair_complexity(data, chunk[0]), pair_complexity(data, chunk[-1]))
            )
        else:
            ranges.append((0, 0))
    return data, levels, ranges


def run_table4(
    scale: float = 1.0,
    grid_order: int = DEFAULT_GRID_ORDER,
    scenario: str = DEFAULT_SCENARIO,
) -> ExperimentResult:
    """Table 4: complexity-level grouping of the OLE-OPE pairs."""
    _, levels, ranges = _levels(scenario, scale, grid_order)
    result = ExperimentResult(
        experiment_id="Table 4",
        title=f"{scenario} post-MBR pairs grouped by complexity level",
        columns=("Complexity level", "Sum of vertices", "Pair count"),
    )
    for level, (chunk, (lo, hi)) in enumerate(zip(levels, ranges), start=1):
        result.add_row(level, f"[{lo},{hi}]", len(chunk))
    result.notes.append("levels hold (approximately) equal pair populations")
    return result


@lru_cache(maxsize=4)
def _per_level_stats(
    scenario: str, scale: float, grid_order: int
) -> tuple[list[JoinRunStats], list[JoinRunStats]]:
    data, levels, _ = _levels(scenario, scale, grid_order)
    op2 = [
        run_find_relation("OP2", data.r_objects, data.s_objects, chunk) for chunk in levels
    ]
    pc = [
        run_find_relation("P+C", data.r_objects, data.s_objects, chunk) for chunk in levels
    ]
    return op2, pc


def run_fig8a(
    scale: float = 1.0,
    grid_order: int = DEFAULT_GRID_ORDER,
    scenario: str = DEFAULT_SCENARIO,
) -> ExperimentResult:
    """Fig. 8(a): P+C % undetermined per complexity level."""
    _, pc = _per_level_stats(scenario, scale, grid_order)
    result = ExperimentResult(
        experiment_id="Fig 8(a)",
        title=f"P+C filtering effectiveness by complexity level ({scenario})",
        columns=("Complexity level", "Pairs", "P+C undetermined %"),
    )
    for level, stats in enumerate(pc, start=1):
        result.add_row(level, stats.pairs, stats.undetermined_pct)
    result.notes.append(
        "expected shape: undetermined share falls sharply as complexity grows"
    )
    return result


def run_fig8b(
    scale: float = 1.0,
    grid_order: int = DEFAULT_GRID_ORDER,
    scenario: str = DEFAULT_SCENARIO,
) -> ExperimentResult:
    """Fig. 8(b): per-level cost of OP2-REF vs P+C-IF vs P+C-REF."""
    op2, pc = _per_level_stats(scenario, scale, grid_order)
    result = ExperimentResult(
        experiment_id="Fig 8(b)",
        title=f"find relation cost by complexity level ({scenario}), seconds",
        columns=("Complexity level", "OP2-REF", "P+C-IF", "P+C-REF", "P+C total"),
    )
    for level in range(NUM_LEVELS):
        result.add_row(
            level + 1,
            op2[level].refine_seconds,
            pc[level].filter_seconds,
            pc[level].refine_seconds,
            pc[level].total_seconds,
        )
    result.notes.append(
        "expected shape: OP2-REF grows superlinearly with level; P+C total "
        "stays nearly flat (fewer pairs refined compensates costlier refinement)"
    )
    return result


__all__ = ["pair_complexity", "run_fig8a", "run_fig8b", "run_table4"]
