"""Integration tests: observability instrumented through the pipeline.

The contracts under test are the ones the run reports depend on:

- off by default: an uninstrumented run collects nothing;
- span totals reconcile with the stage timers in ``JoinRunStats``;
- tracing/metrics never change results, for any worker count;
- per-worker registries merged in the parent equal the serial run's
  counters *exactly* (timing histograms excluded by construction:
  partition- and tile-dependent quantities are recorded only as
  histograms, never counters).
"""

import numpy as np
import pytest

from repro import obs
from repro.datasets import load_scenario
from repro.datasets.synthetic import generate_blobs, generate_tessellation
from repro.geometry import Box
from repro.join.diskjoin import DiskPartitionedJoin
from repro.join.pipeline import run_find_relation
from repro.parallel import run_find_relation_parallel, run_relate_parallel
from repro.topology import TopologicalRelation as T


@pytest.fixture(autouse=True)
def obs_off():
    obs.disable_all()
    yield
    obs.disable_all()


@pytest.fixture(scope="module")
def scenario():
    return load_scenario("OLE-OPE", scale=0.3, grid_order=10)


def run_args(scenario):
    return scenario.r_objects, scenario.s_objects, scenario.pairs


class TestDisabledByDefault:
    def test_plain_run_collects_nothing(self, scenario):
        run_find_relation("P+C", *run_args(scenario))
        assert obs.get_spans() == []
        assert obs.get_registry().counter_values() == {}

    def test_parallel_run_collects_nothing(self, scenario):
        run_find_relation_parallel("P+C", *run_args(scenario), workers=2)
        assert obs.get_spans() == []
        assert obs.get_registry().counter_values() == {}


class TestSpanReconciliation:
    def test_serial_totals_match_stage_timers(self, scenario):
        obs.set_tracing(True)
        stats = run_find_relation("P+C", *run_args(scenario))
        totals = obs.span_totals()
        # The acceptance bound: span totals within 5% of the stats
        # timers (plus a small absolute floor for near-zero stages).
        assert totals["filter"] == pytest.approx(
            stats.filter_seconds, rel=0.05, abs=1e-3
        )
        assert totals["refine"] == pytest.approx(
            stats.refine_seconds, rel=0.05, abs=1e-3
        )
        (root,) = obs.get_spans()
        assert root.name == "run_find_relation"
        assert root.seconds >= totals["filter"]

    def test_parallel_span_tree_has_worker_partitions(self, scenario):
        obs.set_tracing(True)
        run = run_find_relation_parallel("P+C", *run_args(scenario), workers=2)
        (root,) = obs.get_spans()
        assert root.name == "parallel_find"
        partitions = [s for s in root.walk() if s.name == "partition"]
        assert len(partitions) == run.partitions
        assert [p.attrs["part"] for p in partitions] == list(range(run.partitions))
        # Aggregate refine spans from the workers reconcile with the
        # merged stats (sums survive pickling exactly).
        assert root.total("refine") == pytest.approx(
            run.stats.refine_seconds, rel=0.05, abs=1e-3
        )


class TestResultsUnchanged:
    def test_find_results_identical_with_obs_on(self, scenario):
        baseline = run_find_relation_parallel(
            "P+C", *run_args(scenario), workers=1
        ).results
        obs.enable_all()
        obs.set_progress(False)  # keep test output clean
        for workers in (1, 2, 4):
            obs.reset_tracing()
            obs.reset_metrics()
            run = run_find_relation_parallel(
                "P+C", *run_args(scenario), workers=workers
            )
            assert run.results == baseline

    def test_relate_matches_identical_with_obs_on(self, scenario):
        baseline = run_relate_parallel(
            T.INSIDE, *run_args(scenario), workers=1
        ).matches
        obs.enable_all()
        obs.set_progress(False)
        run = run_relate_parallel(T.INSIDE, *run_args(scenario), workers=3)
        assert run.matches == baseline


class TestCounterEquality:
    def test_merged_worker_counters_equal_serial(self, scenario):
        obs.set_metrics(True)
        obs.reset_metrics()
        run_find_relation_parallel("P+C", *run_args(scenario), workers=1)
        serial = obs.get_registry().counter_values()
        assert serial  # the run produced verdict counters

        for workers in (2, 4):
            obs.reset_metrics()
            run_find_relation_parallel(
                "P+C", *run_args(scenario), workers=workers
            )
            assert obs.get_registry().counter_values() == serial

    def test_relate_counters_equal_serial(self, scenario):
        obs.set_metrics(True)
        obs.reset_metrics()
        run_relate_parallel(T.INTERSECTS, *run_args(scenario), workers=1)
        serial = obs.get_registry().counter_values()
        assert any("repro_relate_verdicts_total" in k for k in serial)

        obs.reset_metrics()
        run_relate_parallel(T.INTERSECTS, *run_args(scenario), workers=2)
        assert obs.get_registry().counter_values() == serial

    def test_verdict_counters_sum_to_pair_count(self, scenario):
        obs.set_metrics(True)
        obs.reset_metrics()
        stats = run_find_relation("P+C", *run_args(scenario))
        flat = obs.get_registry().counter_values()
        verdicts = sum(
            v for k, v in flat.items() if k.startswith("repro_verdicts_total")
        )
        assert verdicts == stats.pairs


class TestDiskJoin:
    def test_tile_spans_and_skew_histogram(self, tmp_path):
        rng = np.random.default_rng(17)
        region = Box(0, 0, 400, 400)
        districts = generate_tessellation(rng, region, 3, 3, edge_points=6)
        blobs = generate_blobs(rng, 40, region, (3, 40), (8, 40))
        join = DiskPartitionedJoin(tmp_path, tiles_per_dim=2, grid_order=9)
        extent = region.expanded(1.0)
        join.partition("r", districts, extent)
        join.partition("s", blobs, extent)

        obs.set_tracing(True)
        obs.set_metrics(True)
        obs.reset_metrics()
        results, stats = join.run()
        assert results
        (root,) = obs.get_spans()
        assert root.name == "disk_join"
        tiles = [s for s in root.children if s.name == "tile"]
        assert tiles
        for tile in tiles:
            assert {"tx", "ty", "pairs", "owned"} <= set(tile.attrs)
        hist_export = obs.get_registry().to_dict()["histograms"]
        tile_hist = [h for h in hist_export if h["name"] == "repro_tile_pairs"]
        assert tile_hist and tile_hist[0]["count"] == len(tiles)
