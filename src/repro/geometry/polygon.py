"""Polygons with holes.

A :class:`Polygon` is one shell :class:`~repro.geometry.ring.Ring` plus
zero or more hole rings. By convention (enforced on construction) the
shell is stored counter-clockwise and holes clockwise; input rings in any
orientation are normalised.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterator, Sequence

from repro.geometry.box import Box
from repro.geometry.predicates import Location, locate_point_in_polygon
from repro.geometry.ring import Coord, Ring


class Polygon:
    """A simple polygon with optional holes.

    Parameters
    ----------
    shell:
        The outer ring (any orientation; normalised to CCW) or a raw
        coordinate sequence.
    holes:
        Inner rings (normalised to CW). Holes are assumed to lie inside
        the shell and be mutually non-overlapping; :meth:`is_valid` can
        verify this when needed.
    """

    __slots__ = ("shell", "holes", "__dict__")

    def __init__(
        self,
        shell: Ring | Sequence[Coord],
        holes: Sequence[Ring | Sequence[Coord]] = (),
    ) -> None:
        if not isinstance(shell, Ring):
            shell = Ring(shell)
        self.shell: Ring = shell.oriented(ccw=True)
        normalised: list[Ring] = []
        for hole in holes:
            if not isinstance(hole, Ring):
                hole = Ring(hole)
            normalised.append(hole.oriented(ccw=False))
        self.holes: tuple[Ring, ...] = tuple(normalised)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def box(xmin: float, ymin: float, xmax: float, ymax: float) -> "Polygon":
        """An axis-aligned rectangle polygon."""
        return Polygon([(xmin, ymin), (xmax, ymin), (xmax, ymax), (xmin, ymax)])

    @staticmethod
    def from_box(b: Box) -> "Polygon":
        return Polygon.box(b.xmin, b.ymin, b.xmax, b.ymax)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def rings(self) -> Iterator[Ring]:
        """Shell first, then holes."""
        yield self.shell
        yield from self.holes

    def edges(self) -> Iterator[tuple[Coord, Coord]]:
        """All boundary edges of every ring."""
        for ring in self.rings():
            yield from ring.edges()

    @cached_property
    def bbox(self) -> Box:
        """The polygon's MBR (the shell's MBR)."""
        return self.shell.bbox

    @cached_property
    def num_vertices(self) -> int:
        """Total vertex count over all rings — the paper's complexity measure."""
        return sum(len(r) for r in self.rings())

    @cached_property
    def area(self) -> float:
        """Enclosed area (shell minus holes)."""
        return self.shell.area - sum(h.area for h in self.holes)

    @property
    def perimeter(self) -> float:
        return sum(r.perimeter for r in self.rings())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Polygon({len(self.shell)} shell vertices, {len(self.holes)} holes)"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Polygon)
            and self.shell == other.shell
            and self.holes == other.holes
        )

    def __hash__(self) -> int:
        return hash((self.shell, self.holes))

    @property
    def is_connected(self) -> bool:
        """A (single) polygon's interior is always connected."""
        return True

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def locate(self, point: Coord) -> Location:
        """INTERIOR / BOUNDARY / EXTERIOR classification of ``point``."""
        return locate_point_in_polygon(point, self)

    def contains_point(self, point: Coord) -> bool:
        """True iff ``point`` lies in the closed polygon."""
        return self.locate(point) is not Location.EXTERIOR

    def is_valid(self) -> bool:
        """Structural validity: every ring simple, holes inside the shell,
        hole interiors pairwise disjoint (vertex-sample approximation).

        This is an O(n^2)-ish diagnostic intended for tests and data
        generators, not for the hot join path.
        """
        for ring in self.rings():
            if not ring.is_simple():
                return False
        for hole in self.holes:
            if not self.shell.bbox.contains_box(hole.bbox):
                return False
            for x, y in hole.coords:
                from repro.geometry.predicates import locate_point_in_ring

                if locate_point_in_ring((x, y), self.shell) is Location.EXTERIOR:
                    return False
        for i, h1 in enumerate(self.holes):
            for h2 in self.holes[i + 1 :]:
                if h1.bbox.intersects(h2.bbox):
                    from repro.geometry.predicates import locate_point_in_ring

                    for p in h1.coords:
                        if locate_point_in_ring(p, h2) is Location.INTERIOR:
                            return False
        return True

    # ------------------------------------------------------------------
    # representative point
    # ------------------------------------------------------------------
    @cached_property
    def representative_point(self) -> Coord:
        """A deterministic point strictly inside the polygon's interior.

        Used by the DE-9IM engine for the interior/interior test when the
        boundaries never leave each other (e.g. equal polygons). Scans a
        handful of horizontal lines through the MBR, intersects them with
        every ring edge, and picks the midpoint of an interior span.
        """
        bbox = self.bbox
        # Deterministic sweep fractions; irrational-ish offsets dodge
        # vertex alignments in gridded data.
        for frac in (0.5, 0.382, 0.618, 0.271, 0.729, 0.137, 0.863, 0.049, 0.951):
            y = bbox.ymin + frac * (bbox.ymax - bbox.ymin)
            candidate = self._interior_point_on_line(y)
            if candidate is not None:
                return candidate
        # Extremely thin/degenerate polygon: fall back to probing near
        # each vertex (still deterministic).
        for ax, ay in self.shell.coords:
            for dx, dy in ((1e-9, 1e-9), (-1e-9, 1e-9), (1e-9, -1e-9), (-1e-9, -1e-9)):
                p = (ax + dx * max(1.0, abs(ax)), ay + dy * max(1.0, abs(ay)))
                if self.locate(p) is Location.INTERIOR:
                    return p
        raise ValueError("could not find an interior point; polygon may be degenerate")

    def representative_points(self) -> Iterator[Coord]:
        """One interior witness per interior component (one, here).

        Part of the protocol shared with
        :class:`~repro.geometry.multipolygon.MultiPolygon`, whose
        interior has one component per part.
        """
        yield self.representative_point

    def _interior_point_on_line(self, y: float) -> Coord | None:
        xs: list[float] = []
        for (ax, ay), (bx, by) in self.edges():
            if ay == by:
                continue  # horizontal edges contribute no crossing
            if (ay > y) != (by > y):
                xs.append(ax + (y - ay) * (bx - ax) / (by - ay))
        if len(xs) < 2:
            return None
        xs.sort()
        best: Coord | None = None
        best_span = 0.0
        for i in range(0, len(xs) - 1):
            span = xs[i + 1] - xs[i]
            if span <= best_span:
                continue
            mid = ((xs[i] + xs[i + 1]) / 2.0, y)
            if self.locate(mid) is Location.INTERIOR:
                best = mid
                best_span = span
        return best

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def translated(self, dx: float, dy: float) -> "Polygon":
        return Polygon(
            self.shell.translated(dx, dy), [h.translated(dx, dy) for h in self.holes]
        )

    def scaled(self, factor: float, origin: Coord | None = None) -> "Polygon":
        if origin is None:
            origin = self.bbox.center
        return Polygon(
            self.shell.scaled(factor, origin), [h.scaled(factor, origin) for h in self.holes]
        )
