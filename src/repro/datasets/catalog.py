"""Named datasets and evaluation scenarios (paper Tables 2 and 3).

Every dataset of the paper's Table 2 has a synthetic stand-in here,
generated deterministically from a fixed seed and a ``scale`` knob that
multiplies object counts (laptop-scale defaults; raise ``scale`` for
larger runs). The seven Table-3 scenario combinations are exposed via
:func:`load_scenario`, which builds both datasets, overlays the shared
Hilbert grid, precomputes APRIL approximations, and runs the MBR
filter-step join to produce the candidate pair stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.datasets.synthetic import (
    generate_blobs,
    generate_buildings,
    generate_tessellation,
)
from repro.geometry.box import Box
from repro.geometry.polygon import Polygon
from repro.join.mbr_join import plane_sweep_mbr_join
from repro.join.objects import SpatialObject, make_objects
from repro.raster.grid import RasterGrid

#: All synthetic datasets share one world so cross-dataset scenarios
#: are meaningful (the paper splits OSM by continent for the same
#: reason).
REGION = Box(0.0, 0.0, 1000.0, 1000.0)

#: Default grid: 2^11 cells per dimension over the region (the paper
#: uses 2^16 over far larger dataspaces; see DESIGN.md §4).
DEFAULT_GRID_ORDER = 11


@dataclass
class SpatialDataset:
    """A named polygon collection plus size accounting (Table 2)."""

    name: str
    description: str
    polygons: list[Polygon]

    @property
    def num_polygons(self) -> int:
        return len(self.polygons)

    @property
    def total_vertices(self) -> int:
        return sum(p.num_vertices for p in self.polygons)

    @property
    def geometry_nbytes(self) -> int:
        """Exact-geometry footprint: 16 bytes per vertex (two float64)."""
        return 16 * self.total_vertices

    @property
    def mbr_nbytes(self) -> int:
        """MBR footprint: four float64 per object."""
        return 32 * self.num_polygons

    def boxes(self) -> list[Box]:
        return [p.bbox for p in self.polygons]

    def to_objects(self, grid: RasterGrid | None) -> list[SpatialObject]:
        return make_objects(self.polygons, grid)


# ----------------------------------------------------------------------
# dataset generators (counts at scale=1.0)
# ----------------------------------------------------------------------
def _rng(name: str) -> np.random.Generator:
    # Stable per-dataset stream: same polygons in every scenario.
    return np.random.default_rng(_SEEDS[name])


_SEEDS = {
    "TL": 101, "TW": 102, "TC": 103, "TZ": 104,
    "OBE": 201, "OLE": 202, "OPE": 203,
    "OBN": 301, "OLN": 302, "OPN": 303,
}


def _n(base: int, scale: float) -> int:
    return max(1, int(round(base * scale)))


def _gen_tl(scale: float) -> list[Polygon]:
    return generate_blobs(
        _rng("TL"), _n(320, scale), REGION, radius_range=(0.6, 15.0), vertices_range=(8, 90)
    )


def _gen_tw(scale: float) -> list[Polygon]:
    return generate_blobs(
        _rng("TW"), _n(450, scale), REGION, radius_range=(0.5, 12.0),
        vertices_range=(10, 160), roughness=0.3,
    )


def _gen_tc(scale: float) -> list[Polygon]:
    # Counties: a coarse tessellation with very detailed boundaries
    # (the paper's counties average ~2300 vertices each). The jitter is
    # small relative to a county so boundaries stay smooth at grid
    # scale and the interval lists coalesce well.
    side = max(2, int(round(7 * scale**0.5)))
    return generate_tessellation(
        _rng("TC"), REGION, nx=side + 1, ny=side,
        corner_jitter=0.28, edge_points=550, edge_jitter=0.02,
    )


def _gen_tz(scale: float) -> list[Polygon]:
    side = max(4, int(round(24 * scale**0.5)))
    return generate_tessellation(
        _rng("TZ"), REGION, nx=side + 1, ny=side,
        corner_jitter=0.3, edge_points=80, edge_jitter=0.04,
    )


def _gen_ope(scale: float) -> list[Polygon]:
    return generate_blobs(
        _rng("OPE"), _n(230, scale), REGION, radius_range=(0.8, 60.0),
        vertices_range=(10, 700), roughness=0.32,
    )


def _gen_ole(scale: float) -> list[Polygon]:
    hosts = load_dataset("OPE", scale).polygons
    return generate_blobs(
        _rng("OLE"), _n(380, scale), REGION, radius_range=(0.6, 25.0),
        vertices_range=(12, 520), roughness=0.28,
        hosts=hosts, hosted_fraction=0.55,
    )


def _gen_obe(scale: float) -> list[Polygon]:
    hosts = load_dataset("OPE", scale).polygons
    return generate_buildings(
        _rng("OBE"), _n(1300, scale), REGION, size_range=(0.6, 3.0),
        cluster_count=16, hosts=hosts, hosted_fraction=0.4,
    )


def _gen_opn(scale: float) -> list[Polygon]:
    return generate_blobs(
        _rng("OPN"), _n(180, scale), REGION, radius_range=(0.7, 55.0),
        vertices_range=(8, 450), roughness=0.3,
    )


def _gen_oln(scale: float) -> list[Polygon]:
    hosts = load_dataset("OPN", scale).polygons
    return generate_blobs(
        _rng("OLN"), _n(330, scale), REGION, radius_range=(0.5, 22.0),
        vertices_range=(10, 420), roughness=0.28,
        hosts=hosts, hosted_fraction=0.5,
    )


def _gen_obn(scale: float) -> list[Polygon]:
    hosts = load_dataset("OPN", scale).polygons
    return generate_buildings(
        _rng("OBN"), _n(950, scale), REGION, size_range=(0.6, 3.2),
        cluster_count=12, hosts=hosts, hosted_fraction=0.35,
    )


#: Table 2's datasets: name -> (description, generator).
DATASETS: dict[str, tuple[str, Callable[[float], list[Polygon]]]] = {
    "TL": ("US Landmarks (synthetic analogue)", _gen_tl),
    "TW": ("US Water areas (synthetic analogue)", _gen_tw),
    "TC": ("US Counties (synthetic analogue)", _gen_tc),
    "TZ": ("US Zip Codes (synthetic analogue)", _gen_tz),
    "OBE": ("EU Buildings (synthetic analogue)", _gen_obe),
    "OLE": ("EU Lakes (synthetic analogue)", _gen_ole),
    "OPE": ("EU Parks (synthetic analogue)", _gen_ope),
    "OBN": ("NA Buildings (synthetic analogue)", _gen_obn),
    "OLN": ("NA Lakes (synthetic analogue)", _gen_oln),
    "OPN": ("NA Parks (synthetic analogue)", _gen_opn),
}

#: Table 3's scenario combinations: name -> (R dataset, S dataset).
SCENARIOS: dict[str, tuple[str, str]] = {
    "TL-TW": ("TL", "TW"),
    "TL-TC": ("TL", "TC"),
    "TC-TZ": ("TC", "TZ"),
    "OLE-OPE": ("OLE", "OPE"),
    "OLN-OPN": ("OLN", "OPN"),
    "OBE-OPE": ("OBE", "OPE"),
    "OBN-OPN": ("OBN", "OPN"),
}


def dataset_names() -> list[str]:
    return list(DATASETS)


def scenario_names() -> list[str]:
    return list(SCENARIOS)


@lru_cache(maxsize=32)
def load_dataset(name: str, scale: float = 1.0) -> SpatialDataset:
    """Generate (and cache) a named dataset at the given scale."""
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; available: {dataset_names()}")
    description, generator = DATASETS[name]
    return SpatialDataset(name=name, description=description, polygons=generator(scale))


@dataclass
class ScenarioData:
    """Everything an experiment needs for one Table-3 scenario."""

    name: str
    r_dataset: SpatialDataset
    s_dataset: SpatialDataset
    grid: RasterGrid
    r_objects: list[SpatialObject]
    s_objects: list[SpatialObject]
    #: Candidate pairs from the MBR filter-step join.
    pairs: list[tuple[int, int]] = field(default_factory=list)

    @property
    def num_candidates(self) -> int:
        return len(self.pairs)


@lru_cache(maxsize=8)
def load_scenario(
    name: str,
    scale: float = 1.0,
    grid_order: int = DEFAULT_GRID_ORDER,
) -> ScenarioData:
    """Build a full scenario: datasets, grid, APRIL, candidate pairs."""
    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; available: {scenario_names()}")
    r_name, s_name = SCENARIOS[name]
    r_dataset = load_dataset(r_name, scale)
    s_dataset = load_dataset(s_name, scale)

    dataspace = Box.union_all(
        [Box.union_all(r_dataset.boxes()), Box.union_all(s_dataset.boxes())]
    ).expanded(1e-6)
    grid = RasterGrid(dataspace, order=grid_order)

    r_objects = r_dataset.to_objects(grid)
    s_objects = s_dataset.to_objects(grid)
    pairs = plane_sweep_mbr_join([o.box for o in r_objects], [o.box for o in s_objects])
    pairs.sort()
    return ScenarioData(
        name=name,
        r_dataset=r_dataset,
        s_dataset=s_dataset,
        grid=grid,
        r_objects=r_objects,
        s_objects=s_objects,
        pairs=pairs,
    )


__all__ = [
    "DATASETS",
    "DEFAULT_GRID_ORDER",
    "REGION",
    "SCENARIOS",
    "ScenarioData",
    "SpatialDataset",
    "dataset_names",
    "load_dataset",
    "load_scenario",
    "scenario_names",
]
