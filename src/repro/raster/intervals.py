"""Sorted disjoint interval lists and their merge-join relations.

An :class:`IntervalList` is the storage form of an APRIL approximation:
half-open integer intervals ``[start, end)`` over Hilbert cell ids,
sorted, pairwise disjoint and maximally coalesced. The four relations of
Sec. 3.2 — *overlap*, *match*, *inside*, *contains* — are single-pass
merge joins, each ``O(|X| + |Y|)`` exactly because the intervals within
a list are disjoint and sorted.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np


class IntervalList:
    """An immutable sorted list of disjoint half-open intervals.

    Internally two parallel numpy int64 arrays (``starts``, ``ends``).
    """

    __slots__ = ("starts", "ends")

    def __init__(self, intervals: Iterable[tuple[int, int]] = ()) -> None:
        pairs = [(int(s), int(e)) for s, e in intervals]
        for s, e in pairs:
            if s >= e:
                raise ValueError(f"empty or inverted interval [{s}, {e})")
        pairs.sort()
        merged: list[list[int]] = []
        for s, e in pairs:
            if merged and s <= merged[-1][1]:
                if e > merged[-1][1]:
                    merged[-1][1] = e
            else:
                merged.append([s, e])
        self.starts = np.array([m[0] for m in merged], dtype=np.int64)
        self.ends = np.array([m[1] for m in merged], dtype=np.int64)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_cells(cell_ids: Iterable[int] | np.ndarray) -> "IntervalList":
        """Coalesce individual cell ids into maximal intervals."""
        ids = np.unique(np.asarray(list(cell_ids) if not isinstance(cell_ids, np.ndarray) else cell_ids, dtype=np.int64))
        if ids.size == 0:
            return EMPTY_INTERVALS
        breaks = np.nonzero(np.diff(ids) > 1)[0]
        starts = ids[np.concatenate(([0], breaks + 1))]
        ends = ids[np.concatenate((breaks, [ids.size - 1]))] + 1
        result = IntervalList.__new__(IntervalList)
        result.starts = starts
        result.ends = ends
        return result

    @staticmethod
    def _from_arrays(starts: np.ndarray, ends: np.ndarray) -> "IntervalList":
        result = IntervalList.__new__(IntervalList)
        result.starts = starts
        result.ends = ends
        return result

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.starts.size)

    def __bool__(self) -> bool:
        return self.starts.size > 0

    def __iter__(self) -> Iterator[tuple[int, int]]:
        for s, e in zip(self.starts.tolist(), self.ends.tolist()):
            yield (s, e)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalList):
            return NotImplemented
        return self.matches(other)

    def __hash__(self) -> int:
        return hash((self.starts.tobytes(), self.ends.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = ", ".join(f"[{s},{e})" for s, e in list(self)[:4])
        suffix = ", ..." if len(self) > 4 else ""
        return f"IntervalList({preview}{suffix} | {len(self)} intervals)"

    @property
    def cell_count(self) -> int:
        """Total number of cells covered."""
        return int((self.ends - self.starts).sum())

    @property
    def nbytes(self) -> int:
        """Storage size: two 64-bit words per interval (paper Table 2)."""
        return int(self.starts.nbytes + self.ends.nbytes)

    def covers_cell(self, cell_id: int) -> bool:
        """True iff ``cell_id`` lies in some interval (binary search)."""
        idx = int(np.searchsorted(self.starts, cell_id, side="right")) - 1
        return idx >= 0 and cell_id < self.ends[idx]

    def iter_cells(self) -> Iterator[int]:
        for s, e in self:
            yield from range(s, e)

    # ------------------------------------------------------------------
    # Sec. 3.2 relations (linear merge joins)
    # ------------------------------------------------------------------
    def overlaps(self, other: "IntervalList") -> bool:
        """'X,Y overlap': some pair of intervals shares a cell id."""
        xs, xe = self.starts, self.ends
        ys, ye = other.starts, other.ends
        i = j = 0
        nx, ny = xs.size, ys.size
        while i < nx and j < ny:
            if xs[i] < ye[j] and ys[j] < xe[i]:
                return True
            if xe[i] <= ye[j]:
                i += 1
            else:
                j += 1
        return False

    def matches(self, other: "IntervalList") -> bool:
        """'X,Y match': the two lists are identical."""
        return (
            self.starts.size == other.starts.size
            and bool(np.array_equal(self.starts, other.starts))
            and bool(np.array_equal(self.ends, other.ends))
        )

    def inside(self, other: "IntervalList") -> bool:
        """'X inside Y': every interval of X is contained in one of Y.

        An empty X is vacuously inside anything.
        """
        xs, xe = self.starts, self.ends
        ys, ye = other.starts, other.ends
        ny = ys.size
        j = 0
        for i in range(xs.size):
            s = xs[i]
            e = xe[i]
            while j < ny and ye[j] < e:
                j += 1
            if j >= ny or not (ys[j] <= s and e <= ye[j]):
                return False
        return True

    def contains(self, other: "IntervalList") -> bool:
        """'X contains Y': inverse of 'Y inside X'."""
        return other.inside(self)

    # ------------------------------------------------------------------
    # set operations (used by tests and diagnostics)
    # ------------------------------------------------------------------
    def intersection(self, other: "IntervalList") -> "IntervalList":
        xs, xe = self.starts, self.ends
        ys, ye = other.starts, other.ends
        i = j = 0
        out: list[tuple[int, int]] = []
        while i < xs.size and j < ys.size:
            lo = max(xs[i], ys[j])
            hi = min(xe[i], ye[j])
            if lo < hi:
                out.append((int(lo), int(hi)))
            if xe[i] <= ye[j]:
                i += 1
            else:
                j += 1
        return IntervalList(out)

    def union(self, other: "IntervalList") -> "IntervalList":
        return IntervalList(list(self) + list(other))

    def difference(self, other: "IntervalList") -> "IntervalList":
        out: list[tuple[int, int]] = []
        ys, ye = other.starts, other.ends
        j = 0
        for s, e in self:
            cur = s
            while j < ys.size and ye[j] <= cur:
                j += 1
            k = j
            while k < ys.size and ys[k] < e:
                if ys[k] > cur:
                    out.append((cur, int(ys[k])))
                cur = max(cur, int(ye[k]))
                k += 1
            if cur < e:
                out.append((cur, e))
        return IntervalList(out)


#: Shared empty list (e.g. the P list of a thin polygon with no full cells).
EMPTY_INTERVALS = IntervalList()

__all__ = ["EMPTY_INTERVALS", "IntervalList"]
