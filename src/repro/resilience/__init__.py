"""repro.resilience — fault-tolerant execution for every layer.

The production north star is a system that survives the failures a
production system actually sees: OOM-killed fork workers, processes
crashing mid-persist, and dirty real-world input. This package is the
shared substrate the executor, preprocessing, store and dataset-loading
layers build their fault tolerance on:

- :mod:`repro.resilience.failpoints` — deterministic, seeded fault
  injection at named sites (``worker.crash``, ``worker.hang``,
  ``store.torn_write``, ``io.bad_row``), armed via API or the
  ``REPRO_FAILPOINTS`` environment variable, so every chaos schedule
  replays bit-identically.
- :mod:`repro.resilience.supervisor` — :func:`supervised_map`, the
  ``pool.map`` replacement with per-task deadlines, dead-worker
  detection, bounded retries with backoff, and an in-parent serial
  fallback; completes with correct results for any failure schedule.
- :mod:`repro.resilience.atomic` — tmp + fsync + ``os.replace`` writes
  so store artifacts are never torn.
- :mod:`repro.resilience.quarantine` — typed reports for malformed
  input rows skipped by lenient dataset loads.

Every recovery action is surfaced through :mod:`repro.obs` as
``repro_resilience_*`` counters; see ``docs/robustness.md`` for the
failpoint catalogue and the degradation matrix.
"""

from repro.resilience.atomic import atomic_write_bytes, atomic_write_text, atomic_writer
from repro.resilience.failpoints import (
    KNOWN_SITES,
    FailpointError,
    arm,
    armed,
    disarm,
    disarm_all,
    inject,
    load_env_spec,
    maybe_fail_worker,
    should_fire,
)
from repro.resilience.quarantine import QuarantinedRow, QuarantineReport
from repro.resilience.supervisor import (
    DEFAULT_MAX_RETRIES,
    DEFAULT_PARTITION_TIMEOUT,
    SupervisionReport,
    supervised_map,
)

__all__ = [
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_PARTITION_TIMEOUT",
    "FailpointError",
    "KNOWN_SITES",
    "QuarantineReport",
    "QuarantinedRow",
    "SupervisionReport",
    "arm",
    "armed",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_writer",
    "disarm",
    "disarm_all",
    "inject",
    "load_env_spec",
    "maybe_fail_worker",
    "should_fire",
    "supervised_map",
]
