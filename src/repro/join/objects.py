"""Spatial objects: a polygon plus its precomputed approximations.

The pipelines never want bare polygons — the whole point of the paper
is that most pairs are resolved from the MBR and the APRIL lists alone,
without touching exact geometry. :class:`SpatialObject` bundles the
three representations and lets the statistics layer track when the
exact geometry is actually accessed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.geometry.box import Box
from repro.geometry.polygon import Polygon
from repro.raster.april import AprilApproximation, build_april
from repro.raster.grid import RasterGrid


@dataclass
class SpatialObject:
    """One dataset entity: id, exact geometry, MBR, APRIL approximation."""

    oid: int
    polygon: Polygon
    box: Box
    april: AprilApproximation | None = None
    #: Set to True by pipelines whenever the exact geometry is read.
    geometry_accessed: bool = field(default=False, compare=False)

    @staticmethod
    def from_polygon(oid: int, polygon: Polygon, grid: RasterGrid | None = None) -> "SpatialObject":
        april = build_april(polygon, grid) if grid is not None else None
        return SpatialObject(oid=oid, polygon=polygon, box=polygon.bbox, april=april)

    @property
    def num_vertices(self) -> int:
        return self.polygon.num_vertices

    def require_april(self) -> AprilApproximation:
        if self.april is None:
            raise ValueError(f"object {self.oid} has no APRIL approximation")
        return self.april

    def access_geometry(self) -> Polygon:
        """Read the exact geometry, recording the access for statistics."""
        self.geometry_accessed = True
        return self.polygon


def make_objects(
    polygons: Iterable[Polygon],
    grid: RasterGrid | None = None,
) -> list[SpatialObject]:
    """Wrap a polygon dataset into spatial objects (preprocessing step)."""
    return [SpatialObject.from_polygon(i, p, grid) for i, p in enumerate(polygons)]


def reset_access_tracking(objects: Sequence[SpatialObject]) -> None:
    for obj in objects:
        obj.geometry_accessed = False


__all__ = ["SpatialObject", "make_objects", "reset_access_tracking"]
