"""Query-optimizer support: selectivity estimation and cost modelling.

The paper's introduction cites the use of topological relations in
spatial query optimisation via multiscale histograms [19]. This package
provides that substrate in two layers:

- :mod:`repro.optimizer.selectivity` — compact grid histograms
  summarising a dataset, and estimators for the cardinality of
  topological selections and joins: the numbers an optimiser needs to
  order joins or choose access paths *without* touching the data.
- :mod:`repro.optimizer.cost` — a calibrated per-mode cost model that
  turns those cardinalities (plus core count and cache state) into an
  execution-mode decision; :mod:`repro.optimizer.calibrate` measures
  the machine that feeds it. This is what makes the engine's
  ``mode="auto"`` informed instead of a workers-count heuristic.
"""

from repro.optimizer.cost import (
    CalibrationError,
    CalibrationProfile,
    CostModel,
    Decision,
    JoinFeatures,
    ModeCost,
    default_profile_path,
    load_cost_model,
)
from repro.optimizer.selectivity import SpatialHistogram, estimate_join_candidates

__all__ = [
    "CalibrationError",
    "CalibrationProfile",
    "CostModel",
    "Decision",
    "JoinFeatures",
    "ModeCost",
    "SpatialHistogram",
    "default_profile_path",
    "estimate_join_candidates",
    "load_cost_model",
]
