"""GeoJSON interchange (RFC 7946 subset).

Reads and writes FeatureCollections of Polygon, MultiPolygon,
LineString and Point geometries — the lingua franca for getting real
data in and out of the library. Properties are preserved per feature.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.geometry.linestring import LineString
from repro.geometry.multipolygon import MultiPolygon
from repro.geometry.polygon import Polygon


class GeoJsonError(ValueError):
    """Raised for malformed or unsupported GeoJSON."""


@dataclass
class Feature:
    """One GeoJSON feature: a geometry plus free-form properties."""

    geometry: Any
    properties: dict = field(default_factory=dict)


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
def geometry_from_geojson(obj: dict) -> Any:
    """Convert one GeoJSON geometry object."""
    if not isinstance(obj, dict) or "type" not in obj:
        raise GeoJsonError("geometry must be an object with a 'type'")
    gtype = obj["type"]
    coords = obj.get("coordinates")
    if coords is None:
        raise GeoJsonError(f"{gtype} geometry lacks coordinates")
    try:
        if gtype == "Point":
            return (float(coords[0]), float(coords[1]))
        if gtype == "LineString":
            return LineString([(float(x), float(y)) for x, y in coords])
        if gtype == "Polygon":
            return _polygon_from_rings(coords)
        if gtype == "MultiPolygon":
            return MultiPolygon([_polygon_from_rings(rings) for rings in coords])
    except (TypeError, ValueError) as exc:
        raise GeoJsonError(f"bad {gtype} coordinates: {exc}") from exc
    raise GeoJsonError(f"unsupported geometry type {gtype!r}")


def _polygon_from_rings(rings) -> Polygon:
    if not rings:
        raise GeoJsonError("polygon needs at least a shell ring")
    shell = [(float(x), float(y)) for x, y in rings[0]]
    holes = [[(float(x), float(y)) for x, y in ring] for ring in rings[1:]]
    return Polygon(shell, holes)


def load_geojson(
    source: str | Path | dict,
    strict: bool = True,
    report=None,
) -> list[Feature]:
    """Read a FeatureCollection / Feature / bare geometry.

    ``source`` may be a path, a JSON string, or an already-parsed dict.
    ``strict=True`` (the default) aborts on the first malformed feature;
    with ``strict=False`` bad FeatureCollection entries are skipped into
    ``report`` (a :class:`~repro.resilience.quarantine.QuarantineReport`),
    recorded by their 1-based feature index. A document that is not
    valid JSON at all still raises — there is no row to salvage.
    """
    if isinstance(source, dict):
        doc = source
    else:
        text = Path(source).read_text(encoding="utf-8") if _looks_like_path(source) else str(source)
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise GeoJsonError(f"invalid JSON: {exc}") from exc

    dtype = doc.get("type")
    if dtype == "FeatureCollection":
        entries = doc.get("features", [])
        if strict:
            return [_feature_from(obj) for obj in entries]
        if report is None:
            from repro.resilience.quarantine import QuarantineReport

            report = QuarantineReport(
                source=str(source)
                if not isinstance(source, dict) and _looks_like_path(source)
                else "<geojson>"
            )
        features = []
        for number, obj in enumerate(entries, start=1):
            try:
                features.append(_feature_from(obj))
            except GeoJsonError as exc:
                report.record(number, str(exc), json.dumps(obj, default=str))
        return features
    if dtype == "Feature":
        return [_feature_from(doc)]
    return [Feature(geometry=geometry_from_geojson(doc))]


def _looks_like_path(source) -> bool:
    if isinstance(source, Path):
        return True
    text = str(source).lstrip()
    return not text.startswith("{")


def _feature_from(obj: dict) -> Feature:
    if obj.get("type") != "Feature":
        raise GeoJsonError("FeatureCollection entries must be Features")
    geometry = geometry_from_geojson(obj.get("geometry") or {})
    return Feature(geometry=geometry, properties=dict(obj.get("properties") or {}))


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def geometry_to_geojson(geometry) -> dict:
    """Convert a library geometry to a GeoJSON geometry object."""
    if isinstance(geometry, MultiPolygon):
        return {
            "type": "MultiPolygon",
            "coordinates": [_polygon_rings(part) for part in geometry.parts],
        }
    if isinstance(geometry, Polygon):
        return {"type": "Polygon", "coordinates": _polygon_rings(geometry)}
    if isinstance(geometry, LineString):
        return {"type": "LineString", "coordinates": [[x, y] for x, y in geometry.coords]}
    if isinstance(geometry, tuple) and len(geometry) == 2:
        return {"type": "Point", "coordinates": [geometry[0], geometry[1]]}
    raise GeoJsonError(f"unsupported geometry {type(geometry).__name__}")


def _polygon_rings(polygon: Polygon) -> list:
    rings = []
    for ring in polygon.rings():
        closed = list(ring.coords) + [ring.coords[0]]
        rings.append([[x, y] for x, y in closed])
    return rings


def save_geojson(
    path: str | Path,
    features: Iterable[Feature | Any],
    indent: int | None = None,
) -> int:
    """Write features (or bare geometries) as a FeatureCollection."""
    out = []
    for item in features:
        if isinstance(item, Feature):
            out.append(
                {
                    "type": "Feature",
                    "geometry": geometry_to_geojson(item.geometry),
                    "properties": item.properties,
                }
            )
        else:
            out.append(
                {"type": "Feature", "geometry": geometry_to_geojson(item), "properties": {}}
            )
    doc = {"type": "FeatureCollection", "features": out}
    Path(path).write_text(json.dumps(doc, indent=indent), encoding="utf-8")
    return len(out)


__all__ = [
    "Feature",
    "GeoJsonError",
    "geometry_from_geojson",
    "geometry_to_geojson",
    "load_geojson",
    "save_geojson",
]
