"""Closed-loop load generator for the join service.

The measurement companion of :mod:`repro.serve.service`: ``clients``
threads issue requests back-to-back (closed loop — each client waits
for its response before sending the next), so offered load is
``clients / service_time`` and overload is created by raising the
client count past what one warm engine absorbs. Per-request outcomes
are kept raw; :class:`LoadReport` reduces them to the numbers the
serving literature reports — p50/p95/p99 latency (exact order
statistics over the sample, not histogram-bucket approximations),
throughput, and the shed rate (fraction answered ``429``).

``benchmarks/test_bench_serve.py`` drives this against an in-process
server and records the report into ``BENCH_serve.json`` through the
enveloped bench writer. Stdlib-only (``urllib`` transport).
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

from repro.serve.schema import dumps_wire

#: Per-request socket timeout; generous — overload shows up as 429s,
#: not client-side timeouts, because the service sheds instead of
#: queueing without bound.
REQUEST_TIMEOUT = 120.0

#: Upper bound on one retry sleep: a server asking for a long cooldown
#: still gets re-probed within this window during a load run.
RETRY_SLEEP_CAP = 5.0

#: Statuses that invite a retry: admission shed (429) and transient
#: service unavailability (503 — worker failure, open breaker,
#: exhausted pool). Client errors never retry.
RETRYABLE_STATUSES = (429, 503)


@dataclass
class RequestOutcome:
    """One request as the client saw it (after any retries)."""

    status: int
    seconds: float
    shed: bool
    error: str | None = None
    #: Retries spent before this final status (0 = first try stood).
    retries: int = 0


def post_json(url: str, payload: dict, timeout: float = REQUEST_TIMEOUT) -> tuple[int, dict]:
    """POST a wire document, returning ``(status, response_document)``.

    HTTP error statuses are returned, not raised — a 429 is data for
    the load report, not an exception. A ``Retry-After`` response
    header is folded into the document as ``retry_after`` when the body
    itself lacks one, so callers have a single place to look.
    """
    body = dumps_wire(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}, method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        raw = exc.read().decode("utf-8", errors="replace")
        try:
            document = json.loads(raw)
        except ValueError:
            document = {"error": raw}
        if "retry_after" not in document:
            header = exc.headers.get("Retry-After") if exc.headers else None
            if header is not None:
                try:
                    document["retry_after"] = float(header)
                except ValueError:
                    pass
        return exc.code, document


def get_json(url: str, timeout: float = REQUEST_TIMEOUT) -> tuple[int, dict]:
    """GET a wire document (health checks, run listings)."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def _quantile(ordered: list[float], q: float) -> float:
    """Exact nearest-rank quantile of an already-sorted sample."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class LoadReport:
    """What a load run measured, reduced to reportable numbers."""

    clients: int
    requests: int
    ok: int
    shed: int
    errors: int
    wall_seconds: float
    p50_seconds: float
    p95_seconds: float
    p99_seconds: float
    mean_seconds: float
    #: Total retry attempts spent across the run, and how many requests
    #: needed at least one (``Retry-After``-honouring clients only).
    retries_total: int = 0
    retried_requests: int = 0
    outcomes: list[RequestOutcome] = field(repr=False, default_factory=list)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def throughput_rps(self) -> float:
        """Completed (non-shed) requests per second of wall time."""
        return self.ok / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "shed_rate": round(self.shed_rate, 4),
            "wall_seconds": self.wall_seconds,
            "throughput_rps": round(self.throughput_rps, 3),
            "latency_p50_ms": round(self.p50_seconds * 1e3, 3),
            "latency_p95_ms": round(self.p95_seconds * 1e3, 3),
            "latency_p99_ms": round(self.p99_seconds * 1e3, 3),
            "latency_mean_ms": round(self.mean_seconds * 1e3, 3),
            "retries_total": self.retries_total,
            "retried_requests": self.retried_requests,
        }

    @classmethod
    def from_outcomes(
        cls, outcomes: list[RequestOutcome], clients: int, wall_seconds: float
    ) -> "LoadReport":
        ok = [o for o in outcomes if o.status == 200]
        latencies = sorted(o.seconds for o in ok)
        mean = sum(latencies) / len(latencies) if latencies else 0.0
        return cls(
            clients=clients,
            requests=len(outcomes),
            ok=len(ok),
            shed=sum(1 for o in outcomes if o.shed),
            errors=sum(1 for o in outcomes if o.error is not None),
            wall_seconds=wall_seconds,
            p50_seconds=_quantile(latencies, 0.50),
            p95_seconds=_quantile(latencies, 0.95),
            p99_seconds=_quantile(latencies, 0.99),
            mean_seconds=mean,
            retries_total=sum(o.retries for o in outcomes),
            retried_requests=sum(1 for o in outcomes if o.retries),
            outcomes=outcomes,
        )


def run_load(
    url: str,
    payload: dict,
    *,
    clients: int = 4,
    requests_per_client: int = 8,
    timeout: float = REQUEST_TIMEOUT,
    max_retries: int = 0,
    retry_seed: int = 0,
) -> LoadReport:
    """Drive ``clients`` closed-loop threads against ``url``.

    All clients start together (barrier), each posts ``payload``
    ``requests_per_client`` times back-to-back, and every outcome —
    success, shed, transport error — is recorded with its latency.

    With ``max_retries > 0`` a 429/503 answer is retried up to that
    many times, honouring the server's ``Retry-After`` hint (body
    ``retry_after`` field or header) with ±25% deterministic jitter
    (seeded per client, so replays sleep identically) and a
    :data:`RETRY_SLEEP_CAP` bound. The recorded latency covers the
    whole exchange including backoff sleeps — what the caller actually
    waited.
    """
    outcomes: list[RequestOutcome] = []
    outcomes_lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def _client(index: int) -> None:
        rng = random.Random((retry_seed << 8) | index)
        barrier.wait()
        local = []
        for _ in range(requests_per_client):
            t0 = time.perf_counter()
            retries = 0
            try:
                while True:
                    status, document = post_json(url, payload, timeout=timeout)
                    if status not in RETRYABLE_STATUSES or retries >= max_retries:
                        break
                    hint = document.get("retry_after")
                    try:
                        delay = float(hint)
                    except (TypeError, ValueError):
                        delay = 1.0
                    delay = min(RETRY_SLEEP_CAP, max(0.05, delay))
                    time.sleep(delay * rng.uniform(0.75, 1.25))
                    retries += 1
                local.append(
                    RequestOutcome(
                        status=status,
                        seconds=time.perf_counter() - t0,
                        shed=status == 429,
                        retries=retries,
                    )
                )
            except Exception as exc:  # transport failure, not an HTTP status
                local.append(
                    RequestOutcome(
                        status=0,
                        seconds=time.perf_counter() - t0,
                        shed=False,
                        error=str(exc),
                        retries=retries,
                    )
                )
        with outcomes_lock:
            outcomes.extend(local)

    threads = [
        threading.Thread(target=_client, args=(i,), name=f"loadgen-{i}", daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    t0 = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0
    return LoadReport.from_outcomes(outcomes, clients, wall)


__all__ = [
    "LoadReport",
    "RequestOutcome",
    "get_json",
    "post_json",
    "run_load",
]
