"""Crash-safe store, index repair, and input quarantine tests."""

import json
import multiprocessing

import pytest

from repro.datasets import load_scenario
from repro.datasets.geojson import GeoJsonError, load_geojson
from repro.datasets.io import load_wkt_file, save_wkt_file
from repro.obs.metrics import get_registry, reset_metrics, set_metrics
from repro.raster.april import build_april
from repro.raster.storage import StoreError, load_approximations, save_approximations
from repro.resilience import QuarantineReport, failpoints
from repro.resilience.atomic import atomic_write_text, atomic_writer
from repro.store import Engine, build_dataset, open_dataset
from repro.store.dataset import SpatialDataset


@pytest.fixture(autouse=True)
def clean_failpoints():
    failpoints.disarm_all()
    yield
    failpoints.disarm_all()


@pytest.fixture
def metrics():
    set_metrics(True)
    reset_metrics()
    yield
    set_metrics(False)
    reset_metrics()


@pytest.fixture(scope="module")
def scenario():
    return load_scenario("OLE-OPE", scale=0.3, grid_order=10)


@pytest.fixture(scope="module")
def polygons(scenario):
    return [obj.polygon for obj in scenario.r_objects]


def counter(name_with_labels):
    return get_registry().counter_values().get(name_with_labels, 0)


# ----------------------------------------------------------------------
# atomic writes
# ----------------------------------------------------------------------
class TestAtomicWriter:
    def test_replaces_content_and_leaves_no_tmp(self, tmp_path):
        target = tmp_path / "data.txt"
        atomic_write_text(target, "first")
        atomic_write_text(target, "second")
        assert target.read_text() == "second"
        assert list(tmp_path.iterdir()) == [target]

    def test_error_leaves_destination_untouched(self, tmp_path):
        target = tmp_path / "data.txt"
        atomic_write_text(target, "original")
        with pytest.raises(RuntimeError):
            with atomic_writer(target, "w") as fh:
                fh.write("partial")
                raise RuntimeError("crash mid-write")
        assert target.read_text() == "original"
        assert list(tmp_path.iterdir()) == [target]


# ----------------------------------------------------------------------
# payload persistence under corruption
# ----------------------------------------------------------------------
class TestPayloadCorruption:
    def test_torn_write_failpoint_detected_on_load(self, tmp_path, polygons, scenario):
        aprils = [build_april(p, scenario.grid) for p in polygons[:4]]
        payload = tmp_path / "a.npz"
        with failpoints.inject({"store.torn_write": "always"}):
            save_approximations(payload, aprils)
        with pytest.raises(StoreError, match="corrupt"):
            load_approximations(payload, expected_grid=scenario.grid)
        assert (
            load_approximations(payload, expected_grid=scenario.grid, on_error="rebuild")
            is None
        )

    def test_truncated_and_garbage_files_raise_store_error(self, tmp_path):
        payload = tmp_path / "a.npz"
        for content in (b"", b"PK\x03\x04 torn", b"not an archive at all"):
            payload.write_bytes(content)
            with pytest.raises(StoreError):
                load_approximations(payload)

    def test_invalid_on_error_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="on_error"):
            load_approximations(tmp_path / "a.npz", on_error="explode")

    def test_save_is_atomic(self, tmp_path, polygons, scenario):
        aprils = [build_april(p, scenario.grid) for p in polygons[:4]]
        payload = tmp_path / "a.npz"
        save_approximations(payload, aprils)
        back = load_approximations(payload, expected_grid=scenario.grid)
        assert len(back) == 4
        assert not list(tmp_path.glob("*.tmp.*"))


class TestDatasetPayloadRebuild:
    def test_torn_payload_rebuilt_with_counter(
        self, tmp_path, polygons, scenario, metrics
    ):
        source = tmp_path / "src.wkt"
        save_wkt_file(source, polygons)
        dataset = build_dataset(source, tmp_path / "idx", grid_order=None)
        grid = dataset.grid(10)
        with failpoints.inject({"store.torn_write": "always"}):
            dataset.approximations(grid)  # persists a torn payload
        aprils = dataset.approximations(grid)  # detects + rebuilds
        assert len(aprils) == len(polygons)
        expected = [build_april(p, grid) for p in polygons]
        assert (aprils[0].p.starts == expected[0].p.starts).all()
        assert counter('repro_resilience_rebuild_total{artifact="april_payload"}') >= 1
        # The rebuilt payload is good: a fresh load is a clean cache hit.
        reloaded = dataset.approximations(grid)
        assert len(reloaded) == len(polygons)

    def test_on_error_raise_surfaces_torn_payload(self, tmp_path, polygons, scenario):
        source = tmp_path / "src.wkt"
        save_wkt_file(source, polygons)
        dataset = build_dataset(source, tmp_path / "idx", grid_order=None)
        grid = dataset.grid(10)
        with failpoints.inject({"store.torn_write": "always"}):
            dataset.approximations(grid)
        with pytest.raises(StoreError):
            dataset.approximations(grid, on_error="raise")


# ----------------------------------------------------------------------
# index repair (open_dataset on_error="rebuild")
# ----------------------------------------------------------------------
class TestIndexRepair:
    @pytest.fixture
    def index(self, tmp_path, polygons):
        source = tmp_path / "src.wkt"
        save_wkt_file(source, polygons)
        build_dataset(source, tmp_path / "idx", grid_order=None)
        return tmp_path / "idx", source

    def test_corrupt_manifest_raises_by_default(self, index):
        index_dir, _ = index
        (index_dir / "manifest.json").write_text("{ not json")
        with pytest.raises(StoreError, match="corrupt manifest"):
            open_dataset(index_dir)

    def test_rebuild_from_source(self, index, polygons, metrics):
        index_dir, source = index
        (index_dir / "manifest.json").write_text("{ not json")
        dataset = open_dataset(index_dir, source=source, on_error="rebuild")
        assert len(dataset) == len(polygons)
        assert counter('repro_resilience_rebuild_total{artifact="dataset_index"}') == 1
        # Repaired in place: a strict open now succeeds.
        assert len(open_dataset(index_dir, source=source)) == len(polygons)

    def test_rebuild_from_geometry_dump_without_source(self, index, polygons, metrics):
        index_dir, _ = index
        (index_dir / "manifest.json").unlink()
        dataset = open_dataset(index_dir, on_error="rebuild")
        assert len(dataset) == len(polygons)
        assert len(open_dataset(index_dir)) == len(polygons)

    def test_stale_source_fingerprint_triggers_rebuild(self, index, polygons, metrics):
        index_dir, source = index
        with source.open("a") as fh:
            fh.write("# mutated after indexing\n")
        with pytest.raises(StoreError, match="stale index"):
            open_dataset(index_dir, source=source)
        dataset = open_dataset(index_dir, source=source, on_error="rebuild")
        assert len(dataset) == len(polygons)

    def test_unrecoverable_reraises_original_error(self, index):
        index_dir, _ = index
        (index_dir / "manifest.json").unlink()
        (index_dir / "geometries.wkt").unlink()
        with pytest.raises(StoreError):
            open_dataset(index_dir, on_error="rebuild")

    def test_invalid_on_error_rejected(self, index):
        index_dir, _ = index
        with pytest.raises(ValueError, match="on_error"):
            open_dataset(index_dir, on_error="panic")


# ----------------------------------------------------------------------
# input quarantine
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_strict_default_aborts_with_line_number(self, tmp_path, polygons):
        path = tmp_path / "bad.wkt"
        save_wkt_file(path, polygons[:3])
        lines = path.read_text().splitlines()
        lines.insert(1, "POLYGON((broken")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="bad.wkt:2"):
            load_wkt_file(path)

    def test_lenient_skips_and_reports(self, tmp_path, polygons):
        path = tmp_path / "bad.wkt"
        save_wkt_file(path, polygons[:3])
        lines = path.read_text().splitlines()
        lines.insert(1, "POLYGON((broken")
        path.write_text("\n".join(lines) + "\n")
        report = QuarantineReport()
        loaded = load_wkt_file(path, strict=False, report=report)
        assert len(loaded) == 3
        assert len(report) == 1
        assert report.rows[0].line_number == 2
        assert "broken" in report.rows[0].snippet
        assert "bad.wkt" in report.render()
        assert report.to_dict()["rows"][0]["line_number"] == 2

    def test_bad_row_failpoint_quarantines_injected_rows(self, tmp_path, polygons):
        # The site is keyed by line number, so prob picks a deterministic
        # subset of lines: seed 0 fires on lines 2 and 4 of four.
        path = tmp_path / "good.wkt"
        save_wkt_file(path, polygons[:4])
        report = QuarantineReport()
        with failpoints.inject({"io.bad_row": "prob:0.5"}, seed=0):
            loaded = load_wkt_file(path, strict=False, report=report)
        assert len(loaded) == 2
        assert [r.line_number for r in report.rows] == [2, 4]
        assert all("injected bad row" in r.reason for r in report.rows)

    def test_bad_row_failpoint_respects_strict_mode(self, tmp_path, polygons):
        path = tmp_path / "good.wkt"
        save_wkt_file(path, polygons[:2])
        with failpoints.inject({"io.bad_row": "nth:1"}):
            with pytest.raises(ValueError, match="good.wkt:1"):
                load_wkt_file(path)

    def test_quarantine_counter(self, tmp_path, polygons, metrics):
        path = tmp_path / "good.wkt"
        save_wkt_file(path, polygons[:4])
        with failpoints.inject({"io.bad_row": "prob:0.5"}, seed=0):
            load_wkt_file(path, strict=False)
        values = get_registry().counter_values()
        key = f'repro_resilience_quarantined_rows_total{{source="{path}"}}'
        assert values[key] == 2

    def test_geojson_lenient_mode(self):
        doc = {
            "type": "FeatureCollection",
            "features": [
                {
                    "type": "Feature",
                    "geometry": {
                        "type": "Polygon",
                        "coordinates": [[[0, 0], [1, 0], [1, 1], [0, 0]]],
                    },
                    "properties": {},
                },
                {"type": "Feature", "geometry": {"type": "Banana"}, "properties": {}},
            ],
        }
        with pytest.raises(GeoJsonError):
            load_geojson(doc)
        report = QuarantineReport()
        features = load_geojson(doc, strict=False, report=report)
        assert len(features) == 1
        assert len(report) == 1
        assert report.rows[0].line_number == 2


# ----------------------------------------------------------------------
# acceptance: one engine run surviving the full failure schedule
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="supervised pool needs the fork start method",
)
class TestEngineChaosAcceptance:
    def test_join_survives_torn_write_crash_and_hang(
        self, tmp_path, scenario, metrics
    ):
        r_polys = [obj.polygon for obj in scenario.r_objects]
        s_polys = [obj.polygon for obj in scenario.s_objects]
        save_wkt_file(tmp_path / "r.wkt", r_polys)
        save_wkt_file(tmp_path / "s.wkt", s_polys)
        build_dataset(tmp_path / "r.wkt", tmp_path / "r_idx", grid_order=None)
        build_dataset(tmp_path / "s.wkt", tmp_path / "s_idx", grid_order=None)

        # Ground truth: clean serial in-memory run — identical grid (the
        # WKT round-trip is float64-exact), zero store involvement.
        baseline = Engine().join(r_polys, s_polys, grid_order=10, workers=1)

        # Run 1 is the first cold join against the indexes, so it builds
        # the APRIL payloads and persists them — *torn* — into both.
        with failpoints.inject({"store.torn_write": "always"}):
            torn = Engine().join(
                tmp_path / "r_idx", tmp_path / "s_idx", grid_order=10, workers=1
            )
        assert [(l.r_index, l.s_index, l.relation) for l in torn.results] == [
            (l.r_index, l.s_index, l.relation) for l in baseline.results
        ]

        # Run 2 reads the torn payloads with workers crashing on their
        # first attempt and hanging on their second — and still returns
        # exactly the baseline links.
        failpoints.arm("worker.crash", "nth:1")
        failpoints.arm("worker.hang", "nth:2", hang_seconds=30.0)
        try:
            chaotic = Engine().join(
                tmp_path / "r_idx",
                tmp_path / "s_idx",
                grid_order=10,
                workers=2,
                partition_timeout=1.0,
                max_retries=3,
            )
        finally:
            failpoints.disarm_all()

        assert [(l.r_index, l.s_index, l.relation) for l in chaotic.results] == [
            (l.r_index, l.s_index, l.relation) for l in baseline.results
        ]
        values = get_registry().counter_values()
        rebuilds = sum(v for k, v in values.items() if "rebuild_total" in k)
        retries = sum(v for k, v in values.items() if "retry_total" in k)
        assert rebuilds >= 2  # both torn payloads detected and rebuilt
        assert retries >= 1
        # The repaired payloads persisted: a fresh engine joins warm and
        # byte-identical with zero recovery actions.
        reset_metrics()
        warm = Engine().join(
            tmp_path / "r_idx", tmp_path / "s_idx", grid_order=10, workers=1
        )
        assert [(l.r_index, l.s_index, l.relation) for l in warm.results] == [
            (l.r_index, l.s_index, l.relation) for l in baseline.results
        ]
        values = get_registry().counter_values()
        assert not any("rebuild_total" in k for k in values)


class TestEngineQuarantineMeta:
    @pytest.fixture
    def mangled_inputs(self, tmp_path, scenario):
        r_path, s_path = tmp_path / "r.wkt", tmp_path / "s.wkt"
        save_wkt_file(r_path, [obj.polygon for obj in scenario.r_objects])
        save_wkt_file(s_path, [obj.polygon for obj in scenario.s_objects])
        lines = r_path.read_text().splitlines()
        lines.insert(0, "POLYGON((mangled")
        r_path.write_text("\n".join(lines) + "\n")
        return r_path, s_path

    def test_strict_join_aborts_with_line_number(self, mangled_inputs):
        r_path, s_path = mangled_inputs
        with pytest.raises(ValueError, match="r.wkt:1"):
            Engine().join(r_path, s_path, grid_order=10)

    def test_lenient_join_reports_quarantined_rows(self, mangled_inputs, scenario):
        r_path, s_path = mangled_inputs
        run = Engine().join(r_path, s_path, grid_order=10, strict=False)
        quarantine = run.meta["quarantine"]
        assert len(quarantine) == 1
        assert quarantine[0]["source"].endswith("r.wkt")
        assert quarantine[0]["rows"][0]["line_number"] == 1
        assert len(run.results) > 0
        # The healthy rows all survived the lenient load.
        assert run.meta["r_count"] == len(scenario.r_objects)


class TestSpatialDatasetOpenSignature:
    def test_open_still_validates_content_hash(self, tmp_path, polygons):
        dataset = SpatialDataset(polygons[:3], name="t").save(tmp_path / "idx")
        manifest = json.loads((tmp_path / "idx" / "manifest.json").read_text())
        manifest["content_hash"] = "0" * 64
        (tmp_path / "idx" / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="content hash"):
            SpatialDataset.open(tmp_path / "idx")
