"""Tests for the static HTML dashboard (repro.obs.dashboard)."""

import re

from repro.obs.dashboard import render_dashboard, write_dashboard


def _run_record():
    return {
        "kind": "join_run",
        "method": "P+C",
        "stats": {
            "pairs": 435,
            "resolved_if": 400,
            "refined": 35,
            "filter_seconds": 0.12,
            "refine_seconds": 0.56,
        },
        "spans": [
            {
                "name": "run_find_relation",
                "seconds": 0.7,
                "attrs": {"pairs": 435, "mem_peak_bytes": 999},
                "children": [
                    {"name": "filter", "seconds": 0.12, "attrs": {}, "children": []}
                ],
            }
        ],
        "profile": {
            "backend": "signal",
            "interval": 0.005,
            "samples": 10,
            "dropped_frames": 0,
            "stacks": {"main;join;filter": 4, "main;join;refine": 6},
            "phases": {"filter": 4, "refine": 6},
            "phase_table": [
                {
                    "phase": "filter",
                    "self_seconds": 0.12,
                    "samples": 4,
                    "sample_share": 0.4,
                }
            ],
        },
        "resources": {
            "max_rss_bytes": 100 * 1024 * 1024,
            "tracemalloc_peak_bytes": 5 * 1024 * 1024,
            "tracemalloc_current_bytes": 1024,
            "phase_peaks": {"filter": 5 * 1024 * 1024},
            "payload": {"stored_bytes": 4096, "decoded_bytes": 65536},
        },
        "metrics": {
            "histograms": [
                {
                    "name": "repro_refine_latency_seconds",
                    "labels": {"method": "P+C"},
                    "count": 35,
                    "quantiles": {"p50": 0.001, "p90": 0.003, "p99": 0.009},
                }
            ]
        },
        "meta": {"cost_model": {"decision": "serial", "source": "fallback"}},
    }


def _trend(flagged=False, change=5.0):
    return {
        "file": "BENCH_parallel.json",
        "kind": "parallel_speedup",
        "context": {"workers": 4},
        "metric": "parallel_seconds",
        "direction": "lower",
        "values": [1.0, 1.1, 1.05],
        "latest": 1.05,
        "baseline": 1.05,
        "change_pct": change,
        "threshold_pct": 25.0,
        "flagged": flagged,
    }


class TestSelfContained:
    def test_no_script_no_network(self):
        html = render_dashboard([_run_record()], [_trend()])
        assert "<script" not in html.lower()
        assert "http://" not in html and "https://" not in html
        assert "@import" not in html and "url(" not in html

    def test_single_document_with_inline_style(self):
        html = render_dashboard([], None)
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html
        assert html.count("<html") == 1

    def test_dark_mode_styles_present(self):
        html = render_dashboard([], None)
        assert "prefers-color-scheme: dark" in html


class TestRunSection:
    def test_stat_tiles_and_sections(self):
        html = render_dashboard([_run_record()], None)
        assert "candidate pairs" in html
        assert "Span tree" in html and "run_find_relation" in html
        assert "Profile — 10 samples" in html
        assert "Flamegraph" in html
        assert "Resources" in html and "max RSS" in html
        assert "payload stored" in html
        assert "Histogram quantiles" in html
        assert "Cost-model decision" in html

    def test_flamegraph_cells_proportional(self):
        html = render_dashboard([_run_record()], None)
        assert html.count('class="fcell"') >= 3  # root + two leaves
        assert re.search(r'width:\d+\.\d+%', html)

    def test_mem_attrs_hidden_in_span_tree(self):
        html = render_dashboard([_run_record()], None)
        assert "mem_peak_bytes" not in html.split("Resources")[0]

    def test_html_escaped(self):
        record = _run_record()
        record["method"] = '<img src=x onerror="x">'
        html = render_dashboard([record], None)
        assert "<img" not in html
        assert "&lt;img" in html

    def test_empty_profile_renders_placeholder(self):
        record = _run_record()
        record["profile"]["stacks"] = {}
        html = render_dashboard([record], None)
        assert "No samples collected." in html


class TestBenchSection:
    def test_sparkline_svg_rendered(self):
        html = render_dashboard([], [_trend()])
        assert "<svg" in html and "polyline" in html

    def test_regression_badge(self):
        html = render_dashboard([], [_trend(flagged=True)])
        assert "▲ regression" in html

    def test_unflagged_shows_delta(self):
        html = render_dashboard([], [_trend(flagged=False, change=-3.0)])
        assert "▲ regression" not in html
        assert "-3.0%" in html

    def test_series_count_in_note(self):
        html = render_dashboard([], [_trend(), _trend(flagged=True)])
        assert "2 series tracked, 1 regression(s)" in html

    def test_no_trends_no_bench_section(self):
        html = render_dashboard([_run_record()], None)
        assert "Bench trajectory" not in html


class TestWrite:
    def test_write_dashboard_round_trip(self, tmp_path):
        out = write_dashboard(
            tmp_path / "report.html", [_run_record()], [_trend()]
        )
        assert out.exists()
        text = out.read_text(encoding="utf-8")
        assert "</html>" in text

    def test_deterministic_given_generated(self):
        a = render_dashboard([_run_record()], [_trend()], generated="T")
        b = render_dashboard([_run_record()], [_trend()], generated="T")
        assert a == b
