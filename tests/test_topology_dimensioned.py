"""Tests for dimensioned DE-9IM strings and relate_pattern."""

import pytest

from repro.geometry import Polygon
from repro.topology import relate_dimensioned, relate_pattern

SQUARE = Polygon.box(0, 0, 10, 10)


class TestDimensionedStrings:
    def test_disjoint(self):
        assert relate_dimensioned(SQUARE, Polygon.box(20, 20, 30, 30)) == "FF2FF1212"

    def test_equal(self):
        # II=2, identical boundaries coincide fully (BB=1), nothing else.
        assert relate_dimensioned(SQUARE, Polygon.box(0, 0, 10, 10)) == "2FFF1FFF2"

    def test_proper_overlap(self):
        assert relate_dimensioned(SQUARE, Polygon.box(5, 5, 15, 15)) == "212101212"

    def test_inside(self):
        # II=2, IB=F, IE=F, BI=1, BB=F, BE=F, EI=2, EB=1, EE=2.
        assert relate_dimensioned(Polygon.box(2, 2, 5, 5), SQUARE) == "2FF1FF212"

    def test_meets_edge_dim1(self):
        got = relate_dimensioned(SQUARE, Polygon.box(10, 0, 20, 10))
        assert got[4] == "1"  # shared border segment
        assert got == "FF2F11212"

    def test_meets_corner_dim0(self):
        got = relate_dimensioned(SQUARE, Polygon.box(10, 10, 20, 20))
        assert got[4] == "0"  # single shared point
        assert got == "FF2F01212"

    def test_covered_by_mixed(self):
        got = relate_dimensioned(Polygon.box(0, 2, 5, 5), SQUARE)
        # II=2, boundary partially on boundary (1-dim) and inside.
        assert got[0] == "2" and got[4] == "1" and got[2] == "F" and got[5] == "F"

    def test_ee_always_2(self):
        for other in (SQUARE, Polygon.box(20, 20, 30, 30), Polygon.box(2, 2, 5, 5)):
            assert relate_dimensioned(SQUARE, other)[8] == "2"


class TestRelatePattern:
    def test_t_matches_any_dimension(self):
        assert relate_pattern(SQUARE, Polygon.box(5, 5, 15, 15), "T*T***T**")

    def test_exact_digit_match(self):
        assert relate_pattern(SQUARE, Polygon.box(10, 0, 20, 10), "FF*F1****")
        assert not relate_pattern(SQUARE, Polygon.box(10, 0, 20, 10), "FF*F0****")

    def test_equals_ogc_pattern(self):
        assert relate_pattern(SQUARE, Polygon.box(0, 0, 10, 10), "T*F**FFF*")

    def test_f_mismatch(self):
        assert not relate_pattern(SQUARE, Polygon.box(5, 5, 15, 15), "FF*FF****")

    def test_star_pattern_always_true(self):
        assert relate_pattern(SQUARE, Polygon.box(99, 99, 100, 100), "*********")

    @pytest.mark.parametrize("bad", ["TTT", "T*F**FFFX", "", "T*F**FFF*T"])
    def test_invalid_pattern_rejected(self, bad):
        with pytest.raises(ValueError):
            relate_pattern(SQUARE, SQUARE, bad)

    def test_consistent_with_boolean_masks(self):
        """A dimensioned string reduced to T/F matches the boolean code."""
        from repro.topology import relate

        pairs = [
            (SQUARE, Polygon.box(5, 5, 15, 15)),
            (SQUARE, Polygon.box(20, 20, 30, 30)),
            (SQUARE, Polygon.box(10, 0, 20, 10)),
            (Polygon.box(2, 2, 5, 5), SQUARE),
        ]
        for r, s in pairs:
            dims = relate_dimensioned(r, s)
            bools = relate(r, s).code
            reduced = "".join("F" if c == "F" else "T" for c in dims)
            assert reduced == bools
