"""Deterministic, seeded failpoint injection.

Chaos testing is only useful when a failure schedule can be replayed:
"worker 2 died while verifying partition 5" must mean the same thing on
every machine and every run. A *failpoint* is a named site in the code
(``worker.crash``, ``store.torn_write``, ...) that production code
evaluates on the hot path for ~a dict lookup when nothing is armed, and
that tests arm with a *trigger* deciding deterministically whether the
site fires on a given hit.

Trigger grammar (also accepted by the ``REPRO_FAILPOINTS`` environment
variable, e.g. ``REPRO_FAILPOINTS="worker.crash=times:1,io.bad_row=prob:0.25"``)::

    off          never fire (same as not armed)
    always       fire on every hit
    nth:K        fire on exactly the K-th hit (1-based)
    times:K      fire on the first K hits
    prob:P       fire with probability P per hit, derived from a seeded
                 hash of (seed, site, key, hit) — fully deterministic

Hits are counted per ``(site, key)`` in-process by default; callers on
retry paths pass an explicit ``hit`` number (the attempt) instead, so a
trigger like ``times:1`` means "the first attempt of every task fails,
every retry succeeds" regardless of which worker process runs it.

Worker-process sites (``worker.crash``, ``worker.hang``) only ever take
effect in a *child* of the process that armed them: arming records the
arming pid, and :func:`maybe_fail_worker` is a no-op when running in
that pid. A misarmed failpoint can therefore never kill the parent —
in particular the supervised pool's in-parent serial fallback is immune
by construction.

Everything here is stdlib-only and fork-friendly: armed sites travel
into pool workers by copy-on-write inheritance.
"""

from __future__ import annotations

import hashlib
import logging
import os
import signal
import time
from dataclasses import dataclass, field

log = logging.getLogger("repro.resilience")

#: The failpoint catalogue. Arming any other name raises, so a typo in
#: a test or an env variable fails loudly instead of silently never
#: firing.
KNOWN_SITES = (
    "worker.crash",  # SIGKILL the current worker process at task start
    "worker.hang",   # sleep past any reasonable deadline at task start
    "store.torn_write",  # write a truncated payload, as a crash mid-persist would
    "io.bad_row",    # treat an input row as malformed during dataset load
    "serve.worker_crash",  # SIGKILL the serving engine worker mid-request
    "serve.worker_hang",   # serving worker sleeps past the request deadline
    "serve.slow_response",  # serving worker delays its reply (stays within deadline)
)

#: Default sleep for ``worker.hang`` — far past any test deadline; the
#: supervised pool's terminate-on-exit kills the sleeper.
DEFAULT_HANG_SECONDS = 3600.0

#: Default delay for ``serve.slow_response`` — long enough to be visible
#: in a latency measurement, short enough to stay inside any sane
#: request deadline. (All other sites default to
#: :data:`DEFAULT_HANG_SECONDS`.)
DEFAULT_SLOW_SECONDS = 0.75

ENV_VAR = "REPRO_FAILPOINTS"
ENV_SEED_VAR = "REPRO_FAILPOINTS_SEED"


class FailpointError(ValueError):
    """An invalid failpoint site or trigger specification."""


@dataclass
class FailpointSpec:
    """One armed site: how (and when) it fires."""

    site: str
    mode: str = "always"  # off | always | nth | times | prob
    arg: float = 0.0      # K for nth/times, P for prob
    seed: int = 0
    hang_seconds: float = DEFAULT_HANG_SECONDS
    #: Process-local hit counters, keyed by the caller-supplied key.
    hits: dict = field(default_factory=dict)

    def evaluate(self, key, hit: int) -> bool:
        if self.mode == "off":
            return False
        if self.mode == "always":
            return True
        if self.mode == "nth":
            return hit == int(self.arg)
        if self.mode == "times":
            return hit <= int(self.arg)
        if self.mode == "prob":
            return _uniform(self.seed, self.site, key, hit) < self.arg
        raise FailpointError(f"unknown trigger mode {self.mode!r}")


def _uniform(seed: int, site: str, key, hit: int) -> float:
    """A deterministic uniform draw in [0, 1) for one evaluation."""
    token = f"{seed}|{site}|{key!r}|{hit}".encode("utf-8")
    digest = hashlib.sha256(token).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def parse_trigger(text: str) -> tuple[str, float]:
    """Parse one trigger spec (``always``, ``nth:3``, ``prob:0.5``...)."""
    text = text.strip()
    if text in ("off", "always"):
        return text, 0.0
    mode, sep, arg = text.partition(":")
    if not sep or mode not in ("nth", "times", "prob"):
        raise FailpointError(
            f"invalid failpoint trigger {text!r}; expected off, always, "
            "nth:K, times:K or prob:P"
        )
    try:
        value = float(arg)
    except ValueError:
        raise FailpointError(f"invalid trigger argument in {text!r}") from None
    if mode in ("nth", "times") and (value < 1 or value != int(value)):
        raise FailpointError(f"{mode} trigger needs a positive integer, got {arg!r}")
    if mode == "prob" and not (0.0 <= value <= 1.0):
        raise FailpointError(f"prob trigger needs P in [0, 1], got {arg!r}")
    return mode, value


# ----------------------------------------------------------------------
# the armed-site registry
# ----------------------------------------------------------------------
_SITES: dict[str, FailpointSpec] = {}
#: Pid of the process that armed the registry: worker-process effects
#: (crash/hang) fire only in descendants, never here.
_ARM_PID: int | None = None
_ENV_LOADED = False


def arm(
    site: str,
    trigger: str = "always",
    *,
    seed: int | None = None,
    hang_seconds: float | None = None,
) -> FailpointSpec:
    """Arm ``site`` with ``trigger``; returns the installed spec.

    ``hang_seconds`` defaults per site: ``serve.slow_response`` sleeps
    :data:`DEFAULT_SLOW_SECONDS` (a delay, not a hang), every other
    sleeping site :data:`DEFAULT_HANG_SECONDS` — so an env-armed slow
    response does not stall for an hour.
    """
    global _ARM_PID
    if site not in KNOWN_SITES:
        raise FailpointError(
            f"unknown failpoint site {site!r}; known sites: {list(KNOWN_SITES)}"
        )
    mode, arg = parse_trigger(trigger)
    if seed is None:
        seed = int(os.environ.get(ENV_SEED_VAR, "0") or "0")
    if hang_seconds is None:
        hang_seconds = (
            DEFAULT_SLOW_SECONDS
            if site == "serve.slow_response"
            else DEFAULT_HANG_SECONDS
        )
    spec = FailpointSpec(
        site=site, mode=mode, arg=arg, seed=seed, hang_seconds=hang_seconds
    )
    _SITES[site] = spec
    _ARM_PID = os.getpid()
    return spec


def disarm(site: str) -> None:
    _SITES.pop(site, None)


def disarm_all() -> None:
    _SITES.clear()


def armed(site: str) -> bool:
    _ensure_env_loaded()
    return site in _SITES and _SITES[site].mode != "off"


def active_sites() -> list[str]:
    """The currently armed site names (env spec included)."""
    _ensure_env_loaded()
    return sorted(s for s, spec in _SITES.items() if spec.mode != "off")


def load_env_spec(spec: str | None = None) -> list[str]:
    """Arm sites from a ``REPRO_FAILPOINTS``-style string.

    ``spec`` defaults to the environment variable; entries are
    comma- or semicolon-separated ``site=trigger`` pairs. Returns the
    sites armed.
    """
    if spec is None:
        spec = os.environ.get(ENV_VAR, "")
    sites = []
    for entry in spec.replace(";", ",").split(","):
        entry = entry.strip()
        if not entry:
            continue
        site, sep, trigger = entry.partition("=")
        if not sep:
            raise FailpointError(f"invalid {ENV_VAR} entry {entry!r}; use site=trigger")
        arm(site.strip(), trigger)
        sites.append(site.strip())
    return sites


def _ensure_env_loaded() -> None:
    global _ENV_LOADED
    if _ENV_LOADED:
        return
    _ENV_LOADED = True
    if os.environ.get(ENV_VAR):
        load_env_spec()


class inject:
    """Context manager arming a set of sites for one test block::

        with inject({"worker.crash": "times:1"}, seed=7):
            ...

    On exit the whole registry (and its hit counters) is restored to
    the pre-injection state.
    """

    def __init__(
        self,
        sites: dict[str, str],
        *,
        seed: int | None = None,
        hang_seconds: float | None = None,
    ) -> None:
        self._requested = sites
        self._seed = seed
        self._hang_seconds = hang_seconds
        self._saved: dict[str, FailpointSpec] = {}
        self._saved_pid: int | None = None

    def __enter__(self) -> "inject":
        self._saved = dict(_SITES)
        self._saved_pid = _ARM_PID
        for site, trigger in self._requested.items():
            arm(site, trigger, seed=self._seed, hang_seconds=self._hang_seconds)
        return self

    def __exit__(self, *exc) -> None:
        global _ARM_PID
        _SITES.clear()
        _SITES.update(self._saved)
        _ARM_PID = self._saved_pid


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
def should_fire(site: str, key=None, hit: int | None = None) -> bool:
    """Whether ``site`` fires on this hit.

    With ``hit=None`` the per-``(site, key)`` in-process counter is
    incremented and used; retry-aware callers pass ``hit=attempt`` so
    the decision depends on the task's attempt number, not on which
    process happens to evaluate it.
    """
    _ensure_env_loaded()
    spec = _SITES.get(site)
    if spec is None or spec.mode == "off":
        return False
    if hit is None:
        hit = spec.hits.get(key, 0) + 1
        spec.hits[key] = hit
    fired = spec.evaluate(key, hit)
    if fired:
        _observe_fired(site)
        log.warning("failpoint %s fired (key=%r hit=%d)", site, key, hit)
    return fired


def _observe_fired(site: str) -> None:
    from repro.obs.metrics import get_registry, metrics_enabled

    if metrics_enabled():
        get_registry().inc("repro_resilience_failpoint_fired_total", site=site)


def maybe_fail_worker(key, attempt: int) -> None:
    """Evaluate the worker-process sites at a task boundary.

    ``worker.hang`` is checked before ``worker.crash`` so a schedule
    arming both can exercise both paths. Neither takes effect in the
    arming process itself (the supervisor's serial fallback runs there).
    """
    _ensure_env_loaded()
    if not _SITES or os.getpid() == _ARM_PID:
        return
    if should_fire("worker.hang", key=key, hit=attempt):
        spec = _SITES["worker.hang"]
        time.sleep(spec.hang_seconds)
    if should_fire("worker.crash", key=key, hit=attempt):
        # A real crash: no cleanup, no exception propagation, the
        # process is gone mid-task exactly like an OOM kill.
        os.kill(os.getpid(), signal.SIGKILL)


def maybe_fail_serve(key, hit: int) -> None:
    """Evaluate the serving-worker sites at a request boundary.

    The pool dispatcher stamps each request with a daemon-global
    sequence number and passes it as ``hit``, so a trigger like
    ``times:2`` means "the first two *requests* fail" — deterministic
    across respawns, which reset a worker's in-process hit counters.

    Same parent guard as :func:`maybe_fail_worker`: the arming process
    (the daemon, which also runs the ``--degrade serial`` in-parent
    fallback) is immune by construction; only forked engine workers
    crash or hang.
    """
    _ensure_env_loaded()
    if not _SITES or os.getpid() == _ARM_PID:
        return
    if should_fire("serve.worker_hang", key=key, hit=hit):
        time.sleep(_SITES["serve.worker_hang"].hang_seconds)
    if should_fire("serve.worker_crash", key=key, hit=hit):
        os.kill(os.getpid(), signal.SIGKILL)


def serve_response_delay(key, hit: int) -> float:
    """Seconds the ``serve.slow_response`` site asks the worker to delay
    its reply on this request (0.0 when the site does not fire). Parent
    processes never delay — same guard as the other serve sites."""
    _ensure_env_loaded()
    if not _SITES or os.getpid() == _ARM_PID:
        return 0.0
    if should_fire("serve.slow_response", key=key, hit=hit):
        return _SITES["serve.slow_response"].hang_seconds
    return 0.0


__all__ = [
    "DEFAULT_HANG_SECONDS",
    "DEFAULT_SLOW_SECONDS",
    "ENV_SEED_VAR",
    "ENV_VAR",
    "FailpointError",
    "FailpointSpec",
    "KNOWN_SITES",
    "active_sites",
    "arm",
    "armed",
    "disarm",
    "disarm_all",
    "inject",
    "load_env_spec",
    "maybe_fail_serve",
    "maybe_fail_worker",
    "parse_trigger",
    "serve_response_delay",
    "should_fire",
]
