"""Tests for the top-level CLI and the validity-report module."""

import numpy as np
import pytest

from repro.__main__ import main
from repro.datasets.io import save_wkt_file
from repro.datasets.synthetic import generate_blobs
from repro.geometry import Box, LineString, MultiPolygon, Polygon
from repro.topology.validate import is_valid_geometry, validity_report


@pytest.fixture()
def wkt_files(tmp_path):
    rng = np.random.default_rng(13)
    region = Box(0, 0, 200, 200)
    r = generate_blobs(rng, 15, region, (5, 30), (8, 30))
    s = generate_blobs(rng, 15, region, (5, 30), (8, 30))
    r_path = tmp_path / "r.wkt"
    s_path = tmp_path / "s.wkt"
    save_wkt_file(r_path, r)
    save_wkt_file(s_path, s)
    return str(r_path), str(s_path)


class TestCli:
    def test_relate(self, wkt_files, capsys):
        r, s = wkt_files
        assert main(["relate", r, s]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert len(lines) == 15
        for line in lines:
            _, code, name = line.split("\t")
            assert len(code) == 9

    def test_join(self, wkt_files, capsys):
        r, s = wkt_files
        assert main(["join", r, s, "--grid-order", "9"]) == 0
        err = capsys.readouterr().err
        assert "candidates" in err

    def test_join_predicate(self, wkt_files, capsys):
        r, s = wkt_files
        assert main(["join", r, s, "--grid-order", "9", "--predicate", "intersects"]) == 0
        err = capsys.readouterr().err
        assert "intersects" in err

    def test_select(self, wkt_files, capsys):
        r, _ = wkt_files
        query = "POLYGON ((0 0, 200 0, 200 200, 0 200, 0 0))"
        assert main(["select", r, "--query", query, "--predicate", "inside",
                     "--grid-order", "9"]) == 0
        err = capsys.readouterr().err
        assert "inside" in err

    def test_approximate(self, wkt_files, tmp_path, capsys):
        r, _ = wkt_files
        out = tmp_path / "approx.npz"
        assert main(["approximate", r, "--out", str(out), "--grid-order", "9"]) == 0
        assert out.exists()
        from repro.raster.storage import load_approximations

        assert len(load_approximations(out)) == 15

    def test_stats(self, wkt_files, capsys):
        r, _ = wkt_files
        assert main(["stats", r]) == 0
        out = capsys.readouterr().out
        assert "geometries:     15" in out

    def test_bad_predicate(self, wkt_files):
        r, s = wkt_files
        with pytest.raises(SystemExit):
            main(["join", r, s, "--predicate", "nearby"])

    def test_predicate_aliases(self, wkt_files, capsys):
        r, s = wkt_files
        assert main(["join", r, s, "--grid-order", "9", "--predicate", "covered_by"]) == 0

    def test_datasets_cli_list(self, capsys):
        from repro.datasets.__main__ import main as datasets_main

        assert datasets_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "TL" in out and "scenarios" in out

    def test_datasets_cli_export_and_stats(self, tmp_path, capsys):
        from repro.datasets.__main__ import main as datasets_main

        out = tmp_path / "tl.wkt"
        assert datasets_main(["export", "--dataset", "TL", "--scale", "0.1",
                              "--out", str(out)]) == 0
        assert out.exists()
        assert datasets_main(["stats", "--dataset", "TL", "--scale", "0.1"]) == 0
        text = capsys.readouterr().out
        assert "polygons:" in text


class TestValidityReport:
    def test_valid_polygon_empty_report(self):
        assert validity_report(Polygon.box(0, 0, 10, 10)) == []
        assert is_valid_geometry(Polygon.box(0, 0, 10, 10))

    def test_bowtie_reported(self):
        bowtie = Polygon([(0, 0), (4, 4), (4, 0), (0, 4)])
        issues = validity_report(bowtie)
        assert any(i.code == "ring-self-intersection" for i in issues)
        assert not is_valid_geometry(bowtie)

    def test_overlapping_edges_reported(self):
        spike = Polygon([(0, 0), (8, 0), (4, 0), (4, 5)])
        issues = validity_report(spike)
        assert any(i.code in ("ring-overlap", "ring-self-intersection") for i in issues)

    def test_hole_outside_shell(self):
        bad = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            [[(20, 20), (22, 20), (22, 22), (20, 22)]],
        )
        issues = validity_report(bad)
        assert any(i.code == "hole-outside-shell" for i in issues)

    def test_overlapping_holes(self):
        bad = Polygon(
            [(0, 0), (20, 0), (20, 20), (0, 20)],
            [
                [(2, 2), (10, 2), (10, 10), (2, 10)],
                [(5, 5), (15, 5), (15, 15), (5, 15)],
            ],
        )
        issues = validity_report(bad)
        assert any(i.code == "holes-overlap" for i in issues)

    def test_multipolygon_overlapping_parts(self):
        bad = MultiPolygon([Polygon.box(0, 0, 10, 10), Polygon.box(5, 5, 15, 15)])
        issues = validity_report(bad)
        assert any(i.code == "parts-overlap" for i in issues)

    def test_multipolygon_valid(self):
        good = MultiPolygon([Polygon.box(0, 0, 5, 5), Polygon.box(10, 10, 15, 15)])
        assert validity_report(good) == []

    def test_linestring(self):
        assert validity_report(LineString([(0, 0), (5, 5)])) == []
        crossing = LineString([(0, 0), (4, 4), (4, 0), (0, 4)])
        issues = validity_report(crossing)
        assert issues and issues[0].code == "line-self-intersection"

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            validity_report("nope")

    def test_issue_str(self):
        bowtie = Polygon([(0, 0), (4, 4), (4, 0), (0, 4)])
        text = str(validity_report(bowtie)[0])
        assert "ring-self-intersection" in text
