"""Table 5 — find-relation vs relate_p throughput.

For predicates p ∈ {equals, meets, inside}, compares the throughput of
the general find-relation P+C pipeline (independent of p) against the
predicate-specific relate_p pipeline (Sec. 3.3). Expected shape:
relate_p ≥ find relation for every p, with a dramatic factor for
*meets*, whose non-satisfaction is nearly always provable from one or
two interval merge-joins.
"""

from __future__ import annotations

from repro.datasets.catalog import DEFAULT_GRID_ORDER, load_scenario
from repro.experiments.common import ExperimentResult
from repro.join.pipeline import run_find_relation, run_relate
from repro.topology.de9im import TopologicalRelation as T

DEFAULT_PREDICATES = (T.EQUALS, T.MEETS, T.INSIDE)


def run_table5(
    scale: float = 1.0,
    grid_order: int = DEFAULT_GRID_ORDER,
    scenario: str = "OLE-OPE",
    predicates: tuple[T, ...] = DEFAULT_PREDICATES,
) -> ExperimentResult:
    """Regenerate Table 5 on the synthetic OLE-OPE analogue."""
    data = load_scenario(scenario, scale, grid_order)

    find_stats = run_find_relation("P+C", data.r_objects, data.s_objects, data.pairs)

    result = ExperimentResult(
        experiment_id="Table 5",
        title=f"find relation vs relate_p throughput (pairs/sec, {scenario})",
        columns=("Method",) + tuple(p.value.title() for p in predicates),
    )
    result.add_row("find relation", *[find_stats.throughput] * len(predicates))
    relate_row = []
    undetermined_row = []
    for predicate in predicates:
        stats = run_relate(predicate, data.r_objects, data.s_objects, data.pairs)
        relate_row.append(stats.throughput)
        undetermined_row.append(stats.undetermined_pct)
    result.add_row("relate_p", *relate_row)
    result.add_row(
        "speedup", *[relate_row[k] / find_stats.throughput for k in range(len(predicates))]
    )
    result.add_row("relate_p undetermined %", *undetermined_row)
    result.notes.append(
        "expected shape: relate_p faster for every predicate, and the meets filter "
        "resolves nearly every pair without refinement"
    )
    result.notes.append(
        "throughput ratios are compressed vs the paper: the Python per-pair dispatch "
        "floor (~tens of microseconds) dominates once refinement is rare, whereas the "
        "paper's C++ merge-joins run in sub-microsecond time"
    )
    return result


__all__ = ["run_table5"]
