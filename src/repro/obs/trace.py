"""Hierarchical span tracing with a near-free disabled path.

The paper's whole evaluation is a cost breakdown (IF vs REF time,
undetermined shares, per-scenario throughput); this tracer captures the
same breakdown *inside* a single run: spans for preprocessing, the MBR
filter step, each pipeline stage, each disk-join tile and each parallel
partition, nested into one tree per run.

Design constraints, in order:

1. **Disabled cost ≈ zero.** Tracing is off by default; the hot per-pair
   loops never call into this module at all (instrumentation sits at
   stage/tile/partition granularity), and the stage-level :func:`trace`
   call returns a shared no-op context manager after a single module
   attribute check.
2. **Fork-friendly.** Worker processes inherit the enabled flag by
   ``fork``; :func:`begin_worker_capture` swaps in a fresh collector so
   a worker exports only its own spans (as plain dicts, cheap to
   pickle), which the parent grafts back in partition order — the same
   deterministic order as the ``(i, j)``-sorted result merge.
3. **Reconcilable.** Besides wall-clock spans (:func:`trace`), code can
   attach *aggregate* spans with a pre-measured duration
   (:func:`add_span`) — e.g. the summed per-pair refinement time — so
   span totals reconcile with :class:`~repro.join.stats.JoinRunStats`
   timings instead of double-counting loop overhead.

Only the standard library is used; nothing in this module imports from
``repro``, so any layer may instrument itself without import cycles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "Span",
    "add_span",
    "attach_spans",
    "begin_worker_capture",
    "export_spans",
    "get_spans",
    "register_span_hook",
    "reset_tracing",
    "set_tracing",
    "span_totals",
    "trace",
    "tracing_enabled",
    "unregister_span_hook",
]


@dataclass
class Span:
    """One timed region: name, attributes, duration, child spans."""

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    seconds: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total(self, name: str) -> float:
        """Summed duration of all descendant spans named ``name``."""
        return sum(s.seconds for s in self.walk() if s.name == name)

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"name": self.name, "seconds": self.seconds}
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Span":
        return Span(
            name=data["name"],
            attrs=dict(data.get("attrs", {})),
            seconds=float(data.get("seconds", 0.0)),
            children=[Span.from_dict(c) for c in data.get("children", [])],
        )

    def render(self, indent: int = 0) -> str:
        """ASCII tree rendering (for ``--trace -``)."""
        attrs = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        line = "  " * indent + f"{self.name:<24} {self.seconds * 1e3:10.3f} ms"
        if attrs:
            line += f"   [{attrs}]"
        return "\n".join([line] + [c.render(indent + 1) for c in self.children])


class _Collector:
    """Root list plus the currently open span stack."""

    __slots__ = ("roots", "stack")

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self.stack: list[Span] = []

    def attach(self, span: Span) -> None:
        if self.stack:
            self.stack[-1].children.append(span)
        else:
            self.roots.append(span)


_ENABLED = False
_COLLECTOR = _Collector()

#: ``(on_enter, on_exit)`` callback pairs invoked around every span.
#: Empty in the default configuration, so the only cost a hook adds to
#: the *hookless* enabled path is one truthiness check per span; the
#: disabled path never reaches it. Resource accounting
#: (:mod:`repro.obs.resources`) registers here to annotate spans with
#: memory figures without the tracer importing it.
_SPAN_HOOKS: list[tuple] = []


def register_span_hook(on_enter, on_exit) -> None:
    """Install an ``(on_enter(span), on_exit(span))`` pair around spans.

    Hooks fire only while tracing is enabled: enter-hooks after the span
    is pushed on the open stack, exit-hooks after its duration is set
    (so an exit-hook may attach attributes derived from the timing).
    Registering the same pair twice is a no-op.
    """
    if (on_enter, on_exit) not in _SPAN_HOOKS:
        _SPAN_HOOKS.append((on_enter, on_exit))


def unregister_span_hook(on_enter, on_exit) -> None:
    """Remove a hook pair installed by :func:`register_span_hook`."""
    try:
        _SPAN_HOOKS.remove((on_enter, on_exit))
    except ValueError:
        pass


class _NullCtx:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL = _NullCtx()


class _SpanCtx:
    """Context manager that opens a span and times it on exit."""

    __slots__ = ("span", "_t0")

    def __init__(self, span: Span) -> None:
        self.span = span
        self._t0 = 0.0

    def __enter__(self) -> Span:
        _COLLECTOR.attach(self.span)
        _COLLECTOR.stack.append(self.span)
        if _SPAN_HOOKS:
            for on_enter, _on_exit in _SPAN_HOOKS:
                on_enter(self.span)
        self._t0 = time.perf_counter()
        return self.span

    def __exit__(self, *exc: object) -> bool:
        self.span.seconds = time.perf_counter() - self._t0
        if _SPAN_HOOKS:
            for _on_enter, on_exit in _SPAN_HOOKS:
                on_exit(self.span)
        _COLLECTOR.stack.pop()
        return False


def set_tracing(enabled: bool) -> None:
    """Turn span collection on or off (module-wide)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def tracing_enabled() -> bool:
    return _ENABLED


def reset_tracing() -> None:
    """Drop all collected spans (the enabled flag is unchanged)."""
    global _COLLECTOR
    _COLLECTOR = _Collector()


def trace(name: str, **attrs: Any):
    """Open a timed span; a no-op context manager when tracing is off.

    Intended for stage/tile/partition granularity — not per pair; the
    sampled deep traces (``join.explain``) cover per-pair detail.
    """
    if not _ENABLED:
        return _NULL
    return _SpanCtx(Span(name=name, attrs=attrs))


def add_span(name: str, seconds: float, **attrs: Any) -> None:
    """Attach a span with a pre-measured duration under the open span.

    Used for aggregates timed elsewhere (e.g. summed per-pair
    refinement time), so span totals reconcile with stage timers.
    """
    if not _ENABLED:
        return
    _COLLECTOR.attach(Span(name=name, attrs=attrs, seconds=seconds))


def get_spans() -> list[Span]:
    """The root spans collected so far (live objects, not copies)."""
    return _COLLECTOR.roots


def export_spans() -> list[dict[str, Any]]:
    """Collected root spans as plain dicts (picklable / JSON-safe)."""
    return [s.to_dict() for s in _COLLECTOR.roots]


def attach_spans(spans: list[dict[str, Any]]) -> None:
    """Graft exported spans (e.g. from a worker) under the open span."""
    if not _ENABLED:
        return
    for data in spans:
        _COLLECTOR.attach(Span.from_dict(data))


def begin_worker_capture() -> None:
    """Start a fresh collector in a forked worker.

    Workers inherit the parent's collector (and any half-built tree) by
    copy-on-write; capturing into a fresh one keeps the export limited
    to spans the worker itself produced.
    """
    reset_tracing()


def span_totals(spans: list[Span] | None = None) -> dict[str, float]:
    """Summed seconds per span name over whole trees (skew/overview)."""
    totals: dict[str, float] = {}
    for root in _COLLECTOR.roots if spans is None else spans:
        for s in root.walk():
            totals[s.name] = totals.get(s.name, 0.0) + s.seconds
    return totals
