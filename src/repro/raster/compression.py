"""Compressed storage for interval lists (delta + varint coding).

Table 2 of the paper reports the approximations' storage footprint; the
plain form spends two 64-bit words per interval. Because interval
starts are sorted and Hilbert locality keeps gaps small, delta-encoding
(start deltas and lengths) followed by LEB128 varints typically shrinks
lists by 4-6x. The codec is lossless and self-delimiting, so compressed
lists concatenate into dataset-level blobs.

Since PR 7 this module is the store's real payload format, not a
demonstration codec, and it carries two implementations of every
primitive:

- **vectorised** (the default): whole-dataset numpy passes — varint
  byte sizes from threshold comparisons, scattered masked writes on
  encode, terminal-byte scans plus masked accumulation on decode, and
  segmented cumulative sums to rebuild absolute interval bounds. One
  :class:`CompressedAprilPayload` holds a whole grid's approximations
  as a single contiguous byte blob plus a per-object offset/summary
  table, so each object decodes independently;
- **reference** (the original pure-Python scalar loops, kept as
  ``_reference_*``): selected globally with ``REPRO_REFERENCE_KERNELS=1``
  or :func:`repro.raster.kernels.set_reference_kernels`, and
  differentially tested byte-for-byte against the vectorised codec
  (``tests/test_compression_differential.py``).

The wire format is identical for both: per interval list a varint
count, then per interval a varint *gap* (distance from the previous
interval's end; the first gap is the absolute start) and a varint
*length*; one object is its P stream followed by its C stream. The
dataset blob is simply every object's stream back to back, with byte
offsets kept in the summary table.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Sequence

import numpy as np

from repro.obs.metrics import get_registry, metrics_enabled
from repro.raster import kernels
from repro.raster.april import AprilApproximation
from repro.raster.grid import RasterGrid
from repro.raster.intervals import IntervalList

#: Decoded-object cache bound per payload (plain interval-list bytes).
#: Large enough to keep every object of the bundled scenarios decoded;
#: bounded so a huge dataset cannot hold its whole plain form resident
#: next to the compressed blob. ``Engine`` overrides it per instance.
DEFAULT_DECODED_CACHE_BYTES = 128 << 20

#: Summary ``flags`` bits (see :class:`CompressedAprilPayload`).
FLAG_P_ALL = 1  #: the P list is one single run of ALL-inside cells
FLAG_PARTIAL = 2  #: C covers cells P does not (boundary/partial cells)


def _observe_decoded_bytes(nbytes: int) -> None:
    if metrics_enabled() and nbytes:
        get_registry().inc("repro_payload_decoded_bytes_total", value=int(nbytes))


# ----------------------------------------------------------------------
# scalar reference codec (the original implementation)
# ----------------------------------------------------------------------
def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError("varint cannot encode negative values")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise ValueError("varint too long")


def _reference_encode_intervals(intervals: IntervalList) -> bytes:
    out = bytearray()
    _write_varint(out, len(intervals))
    previous_end = 0
    for start, end in intervals:
        _write_varint(out, start - previous_end)
        _write_varint(out, end - start)
        previous_end = end
    return bytes(out)


def _reference_decode_intervals(data: bytes, pos: int = 0) -> tuple[IntervalList, int]:
    count, pos = _read_varint(data, pos)
    pairs = []
    cursor = 0
    for _ in range(count):
        gap, pos = _read_varint(data, pos)
        length, pos = _read_varint(data, pos)
        start = cursor + gap
        end = start + length
        pairs.append((start, end))
        cursor = end
    return IntervalList(pairs), pos


# ----------------------------------------------------------------------
# vectorised varint kernels
# ----------------------------------------------------------------------
def varint_sizes(values: np.ndarray) -> np.ndarray:
    """Encoded byte length of each value (int64, non-negative).

    A value of bit length ``b`` takes ``ceil(b / 7)`` bytes — one base
    byte plus one for every 7-bit threshold it reaches. Eight
    comparisons cover the whole non-negative int64 range (max 9 bytes).
    """
    sizes = np.ones(values.shape, dtype=np.int64)
    for shift in range(7, 63, 7):
        sizes += values >= (np.int64(1) << shift)
    return sizes


def varint_encode(values: np.ndarray) -> np.ndarray:
    """LEB128-encode an int64 array into one contiguous uint8 stream.

    Byte-identical to writing each value through the scalar reference
    encoder in order. At most nine masked passes: pass ``i`` scatters
    byte ``i`` of every value long enough to have one, with the
    continuation bit set unless it is the value's last byte.
    """
    values = np.ascontiguousarray(values, dtype=np.int64)
    if values.size == 0:
        return np.empty(0, dtype=np.uint8)
    if values.min() < 0:
        raise ValueError("varint cannot encode negative values")
    sizes = varint_sizes(values)
    ends = np.cumsum(sizes)
    starts = ends - sizes
    out = np.empty(int(ends[-1]), dtype=np.uint8)
    for i in range(int(sizes.max())):
        mask = sizes > i
        chunk = (values[mask] >> np.int64(7 * i)) & 0x7F
        chunk[sizes[mask] - 1 > i] |= 0x80
        out[starts[mask] + i] = chunk
    return out


def varint_decode(data: np.ndarray, expected: int | None = None) -> np.ndarray:
    """Decode a whole uint8 varint stream back into int64 values.

    Value boundaries are the bytes with a clear continuation bit; each
    value is then accumulated over at most nine masked passes. With
    ``expected`` set, the stream must hold exactly that many values
    (the shape check block decoding leans on).
    """
    data = np.ascontiguousarray(data, dtype=np.uint8)
    if data.size == 0:
        if expected not in (None, 0):
            raise ValueError("truncated varint")
        return np.empty(0, dtype=np.int64)
    terminal = data < 0x80
    if not terminal[-1]:
        raise ValueError("truncated varint")
    ends = np.nonzero(terminal)[0]
    if expected is not None and ends.size != expected:
        raise ValueError(
            f"varint stream holds {ends.size} values, expected {expected}"
        )
    starts = np.empty_like(ends)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    sizes = ends - starts + 1
    if sizes.max() > 9:
        raise ValueError("varint too long")
    values = np.zeros(ends.size, dtype=np.int64)
    for i in range(int(sizes.max())):
        mask = sizes > i
        values[mask] |= (data[starts[mask] + i].astype(np.int64) & 0x7F) << np.int64(
            7 * i
        )
    return values


def _segmented_bounds(
    gaps: np.ndarray, lengths: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Absolute (starts, ends) from per-list delta streams.

    ``gaps``/``lengths`` are every list's deltas back to back and
    ``counts`` the per-list interval counts. Each end is the running
    sum of ``gap + length`` within its own list — a global cumulative
    sum minus the sum accumulated before the list began.
    """
    advance = gaps + lengths
    running = np.cumsum(advance)
    first = np.zeros(counts.size, dtype=np.int64)
    first[1:] = np.cumsum(counts)[:-1]
    nonempty = counts > 0
    base = np.zeros(counts.size, dtype=np.int64)
    base[nonempty] = running[first[nonempty]] - advance[first[nonempty]]
    ends = running - np.repeat(base, counts)
    return ends - lengths, ends


def _delta_streams(
    lists: Sequence[IntervalList],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(counts, gaps, lengths) of many interval lists, concatenated."""
    counts = np.fromiter((len(il) for il in lists), dtype=np.int64, count=len(lists))
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return counts, empty, empty
    starts = np.concatenate([il.starts for il in lists])
    ends = np.concatenate([il.ends for il in lists])
    previous = np.zeros(total, dtype=np.int64)
    previous[1:] = ends[:-1]
    first = np.zeros(counts.size, dtype=np.int64)
    first[1:] = np.cumsum(counts)[:-1]
    previous[first[counts > 0]] = 0
    return counts, starts - previous, ends - starts


# ----------------------------------------------------------------------
# public per-list codec (dispatches on the reference switch)
# ----------------------------------------------------------------------
def encode_intervals(intervals: IntervalList) -> bytes:
    """Encode a sorted disjoint interval list losslessly.

    Layout: varint count, then per interval a varint *gap* (distance
    from the previous interval's end; the first gap is the absolute
    start) and a varint *length*.
    """
    if kernels.reference_kernels_enabled():
        return _reference_encode_intervals(intervals)
    n = len(intervals)
    values = np.empty(1 + 2 * n, dtype=np.int64)
    values[0] = n
    if n:
        previous = np.zeros(n, dtype=np.int64)
        previous[1:] = intervals.ends[:-1]
        values[1::2] = intervals.starts - previous
        values[2::2] = intervals.ends - intervals.starts
    return varint_encode(values).tobytes()


def decode_intervals(data: bytes, pos: int = 0) -> tuple[IntervalList, int]:
    """Decode one interval list; returns it and the next read position."""
    if kernels.reference_kernels_enabled():
        return _reference_decode_intervals(data, pos)
    count, pos = _read_varint(data, pos)
    if count == 0:
        return IntervalList(), pos
    # A count-interval list spans at most 18*count more bytes (two
    # 9-byte varints per interval), so only that window is scanned —
    # decoding a list out of a long concatenated stream stays local.
    window = np.frombuffer(
        data, dtype=np.uint8, offset=pos, count=min(len(data) - pos, 18 * count)
    )
    terminal_idx = np.nonzero(window < 0x80)[0]
    if terminal_idx.size < 2 * count:
        raise ValueError("truncated varint")
    last = int(terminal_idx[2 * count - 1])
    values = varint_decode(window[: last + 1], expected=2 * count)
    gaps = values[0::2]
    lengths = values[1::2]
    starts, ends = _segmented_bounds(
        gaps, lengths, np.array([count], dtype=np.int64)
    )
    if (lengths < 1).any():
        k = int(np.argmax(lengths < 1))
        raise ValueError(f"empty or inverted interval [{starts[k]}, {ends[k]})")
    if (gaps[1:] == 0).any():
        # Adjacent runs in a non-canonical stream: coalesce exactly as
        # the reference decoder's IntervalList constructor would.
        return IntervalList(np.stack([starts, ends], axis=1)), pos + last + 1
    return IntervalList._from_arrays(starts, ends), pos + last + 1


def encode_approximation(approx) -> bytes:
    """Encode one object's P and C lists (grid carried separately)."""
    return encode_intervals(approx.p) + encode_intervals(approx.c)


def decode_approximation(data: bytes, grid: RasterGrid, pos: int = 0) -> tuple[AprilApproximation, int]:
    p, pos = decode_intervals(data, pos)
    c, pos = decode_intervals(data, pos)
    return AprilApproximation(grid=grid, p=p, c=c), pos


def compression_ratio(approx, stored_nbytes: int | None = None) -> float:
    """Plain two-words-per-interval bytes over actually stored bytes.

    ``stored_nbytes`` is what the payload really occupies on disk (the
    store's archive member, varint blob share, …); without it the ratio
    falls back to the raw codec-stream length — an upper bound on disk
    footprint, since the store compresses the stream further.
    """
    if stored_nbytes is None:
        stored_nbytes = len(encode_approximation(approx))
    if stored_nbytes <= 0:
        return 1.0
    return approx.nbytes / stored_nbytes


# ----------------------------------------------------------------------
# dataset-level payloads
# ----------------------------------------------------------------------
class CompressedAprilPayload:
    """A whole dataset's approximations as one compressed byte blob.

    ``blob`` is every object's delta+varint stream back to back;
    ``offsets[k]:offsets[k+1]`` bounds object ``k``'s slice so objects
    decode independently (and in batches). The summary table carries,
    per object, what the decode-aware filters need *without* touching
    the blob:

    - ``p_count`` / ``c_count`` — interval counts;
    - ``p_first``/``p_last`` and ``c_first``/``c_last`` — the list's
      overall half-open Hilbert cell range (zeros for empty lists);
    - ``p_cells`` / ``c_cells`` — total covered cells;
    - ``flags`` — ``FLAG_P_ALL`` when P is one single ALL-inside run
      (the containment screen's trigger) and ``FLAG_PARTIAL`` when C
      covers boundary cells beyond P.

    Decoded objects land in a bounded LRU (``max_decoded_bytes`` of
    plain interval-list bytes), so repeated warm joins amortise decode
    cost while a giant dataset cannot silently materialise its whole
    plain form. Every decode increments
    ``repro_payload_decoded_bytes_total``.
    """

    __slots__ = (
        "grid",
        "blob",
        "offsets",
        "p_count",
        "c_count",
        "p_cells",
        "c_cells",
        "p_first",
        "p_last",
        "c_first",
        "c_last",
        "flags",
        "max_decoded_bytes",
        "_decoded",
        "_decoded_nbytes",
    )

    def __init__(
        self,
        grid: RasterGrid,
        blob: np.ndarray,
        offsets: np.ndarray,
        summary: dict,
        max_decoded_bytes: int = DEFAULT_DECODED_CACHE_BYTES,
    ) -> None:
        self.grid = grid
        self.blob = np.ascontiguousarray(blob, dtype=np.uint8)
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        for name in ("p_count", "c_count", "p_cells", "c_cells",
                     "p_first", "p_last", "c_first", "c_last"):
            setattr(self, name, np.ascontiguousarray(summary[name], dtype=np.int64))
        self.flags = np.ascontiguousarray(summary["flags"], dtype=np.uint8)
        self.max_decoded_bytes = max_decoded_bytes
        self._decoded: OrderedDict[int, AprilApproximation] = OrderedDict()
        self._decoded_nbytes = 0
        n = len(self)
        if self.offsets.size != n + 1 or (np.diff(self.offsets) < 0).any():
            raise ValueError("payload offsets must be monotone with one per object")
        if int(self.offsets[-1]) != self.blob.size or int(self.offsets[0]) != 0:
            raise ValueError("payload offsets do not span the blob")

    def __len__(self) -> int:
        return self.p_count.size

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_approximations(
        cls,
        approximations: Sequence,
        max_decoded_bytes: int = DEFAULT_DECODED_CACHE_BYTES,
    ) -> "CompressedAprilPayload":
        """Encode a dataset's approximations into one payload.

        The vectorised path assembles a single int64 value stream —
        ``[|P|, P deltas..., |C|, C deltas...]`` per object — with
        scattered writes and varint-encodes it in one call; the byte
        output is identical to concatenating the scalar reference
        encoder's per-object streams (differentially tested).
        """
        if not approximations:
            raise ValueError("nothing to encode: empty approximation sequence")
        grid = approximations[0].grid
        p_counts, p_gaps, p_lens = _delta_streams([a.p for a in approximations])
        c_counts, c_gaps, c_lens = _delta_streams([a.c for a in approximations])
        n = len(approximations)

        if kernels.reference_kernels_enabled():
            blob = np.frombuffer(
                b"".join(
                    _reference_encode_intervals(a.p) + _reference_encode_intervals(a.c)
                    for a in approximations
                ),
                dtype=np.uint8,
            )
            sizes = None
        else:
            per_object = 2 + 2 * p_counts + 2 * c_counts
            value_off = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(per_object, out=value_off[1:])
            values = np.empty(int(value_off[-1]), dtype=np.int64)
            values[value_off[:-1]] = p_counts
            values[value_off[:-1] + 1 + 2 * p_counts] = c_counts
            p_base = np.repeat(value_off[:-1] + 1, p_counts)
            p_within = np.arange(p_gaps.size, dtype=np.int64) - np.repeat(
                np.concatenate(([0], np.cumsum(p_counts)[:-1])), p_counts
            )
            values[p_base + 2 * p_within] = p_gaps
            values[p_base + 2 * p_within + 1] = p_lens
            c_base = np.repeat(value_off[:-1] + 2 + 2 * p_counts, c_counts)
            c_within = np.arange(c_gaps.size, dtype=np.int64) - np.repeat(
                np.concatenate(([0], np.cumsum(c_counts)[:-1])), c_counts
            )
            values[c_base + 2 * c_within] = c_gaps
            values[c_base + 2 * c_within + 1] = c_lens
            blob = varint_encode(values)
            sizes = varint_sizes(values)

        offsets = np.zeros(n + 1, dtype=np.int64)
        if sizes is None:
            cursor = 0
            for k, a in enumerate(approximations):
                cursor += len(_reference_encode_intervals(a.p)) + len(
                    _reference_encode_intervals(a.c)
                )
                offsets[k + 1] = cursor
        else:
            np.cumsum(np.add.reduceat(sizes, value_off[:-1]), out=offsets[1:])

        summary = _build_summary(approximations, p_counts, c_counts)
        return cls(grid, blob, offsets, summary, max_decoded_bytes=max_decoded_bytes)

    @classmethod
    def from_blob(
        cls,
        grid: RasterGrid,
        blob: np.ndarray,
        offsets: np.ndarray,
        max_decoded_bytes: int = DEFAULT_DECODED_CACHE_BYTES,
    ) -> "CompressedAprilPayload":
        """Rebuild a payload from its stored blob and object offsets.

        The summary table is fully derivable from the streams, so the
        store does not persist it; this constructor recovers it with
        one vectorised varint pass over the whole blob — counts, cell
        bounds and covered-cell totals per object — without building a
        single :class:`IntervalList`.
        """
        blob = np.ascontiguousarray(blob, dtype=np.uint8)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        if offsets.size < 2:
            raise ValueError("payload offsets must cover at least one object")
        n = offsets.size - 1
        values = varint_decode(blob)
        # Byte offsets -> value-stream offsets: a value ends exactly at
        # each clear-continuation byte, so the number of values before
        # byte b is the count of terminal bytes in blob[:b].
        cum_terminal = np.cumsum(blob < 0x80)
        value_off = np.zeros(n + 1, dtype=np.int64)
        inner = offsets[1:]
        if (inner < 1).any() or (inner > blob.size).any():
            raise ValueError("payload offsets do not span the blob")
        value_off[1:] = cum_terminal[inner - 1]
        if (value_off[:-1] >= values.size).any():
            raise ValueError("payload offsets do not match the encoded stream")
        p_counts = values[value_off[:-1]]
        if (p_counts < 0).any():
            raise ValueError("corrupt payload: negative interval count")
        count_idx = value_off[:-1] + 1 + 2 * p_counts
        if (count_idx >= values.size).any():
            raise ValueError("payload offsets do not match the encoded stream")
        c_counts = values[count_idx]
        if (np.diff(value_off) != 2 + 2 * p_counts + 2 * c_counts).any():
            raise ValueError("payload offsets do not match the encoded stream")

        def bounds(base: np.ndarray, counts: np.ndarray):
            idx = np.repeat(base, counts) + 2 * (
                np.arange(int(counts.sum()), dtype=np.int64)
                - np.repeat(np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
            )
            gaps = values[idx]
            lengths = values[idx + 1]
            if gaps.size and (lengths < 1).any():
                raise ValueError("corrupt payload: empty or inverted interval")
            starts, ends = _segmented_bounds(gaps, lengths, counts)
            first_idx = np.concatenate(([0], np.cumsum(counts)[:-1]))
            cum_lens = np.concatenate(([0], np.cumsum(lengths)))
            cells = cum_lens[first_idx + counts] - cum_lens[first_idx]
            first = np.zeros(counts.size, dtype=np.int64)
            last = np.zeros(counts.size, dtype=np.int64)
            nonempty = counts > 0
            first[nonempty] = starts[first_idx[nonempty]]
            last[nonempty] = ends[first_idx[nonempty] + counts[nonempty] - 1]
            return cells, first, last

        p_cells, p_first, p_last = bounds(value_off[:-1] + 1, p_counts)
        c_cells, c_first, c_last = bounds(value_off[:-1] + 2 + 2 * p_counts, c_counts)
        flags = np.zeros(n, dtype=np.uint8)
        flags[p_counts == 1] |= FLAG_P_ALL
        flags[c_cells > p_cells] |= FLAG_PARTIAL
        summary = {
            "p_count": p_counts, "c_count": c_counts,
            "p_cells": p_cells, "c_cells": c_cells,
            "p_first": p_first, "p_last": p_last,
            "c_first": c_first, "c_last": c_last,
            "flags": flags,
        }
        return cls(grid, blob, offsets, summary, max_decoded_bytes=max_decoded_bytes)

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    @property
    def stored_nbytes(self) -> int:
        """Bytes this payload occupies before archive compression."""
        arrays = (self.blob, self.offsets, self.p_count, self.c_count,
                  self.p_cells, self.c_cells, self.p_first, self.p_last,
                  self.c_first, self.c_last, self.flags)
        return int(sum(a.nbytes for a in arrays))

    @property
    def plain_nbytes(self) -> int:
        """The two-words-per-interval footprint of the decoded form."""
        return 16 * int(self.p_count.sum() + self.c_count.sum())

    def object_nbytes(self, index: int) -> int:
        return 16 * int(self.p_count[index] + self.c_count[index])

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def is_decoded(self, index: int) -> bool:
        return index in self._decoded

    def decode(self, index: int) -> AprilApproximation:
        """Object ``index``'s approximation, decoded through the LRU."""
        cached = self._decoded.get(index)
        if cached is not None:
            self._decoded.move_to_end(index)
            return cached
        return self.decode_block([index])[0]

    def decode_block(self, indices: Sequence[int]) -> list[AprilApproximation]:
        """Decode many objects in one pass; returns their approximations.

        Missing objects' byte slices are gathered and decoded together
        (one varint scan, one segmented reconstruction), then inserted
        into the bounded decoded-LRU.
        """
        # Gather results in a local map: with a tight decoded-bytes
        # bound the LRU may evict a just-inserted object before the
        # block is assembled, so the cache cannot serve as the staging
        # area for the return value.
        found: dict[int, AprilApproximation] = {}
        missing = []
        for k in dict.fromkeys(int(i) for i in indices):
            cached = self._decoded.get(k)
            if cached is not None:
                self._decoded.move_to_end(k)
                found[k] = cached
            else:
                missing.append(k)
        if missing:
            if kernels.reference_kernels_enabled():
                decoded = [self._reference_decode_one(k) for k in missing]
            else:
                decoded = self._decode_many(missing)
            fresh = 0
            for k, approx in zip(missing, decoded):
                found[k] = approx
                self._insert(k, approx)
                fresh += approx.nbytes
            _observe_decoded_bytes(fresh)
        return [found[int(i)] for i in indices]

    def approximations(self) -> list["LazyAprilApproximation"]:
        """One lazy, duck-typed approximation per object."""
        return [LazyAprilApproximation(self, k) for k in range(len(self))]

    def _reference_decode_one(self, index: int) -> AprilApproximation:
        lo, hi = int(self.offsets[index]), int(self.offsets[index + 1])
        data = self.blob[lo:hi].tobytes()
        p, pos = _reference_decode_intervals(data)
        c, pos = _reference_decode_intervals(data, pos)
        if pos != len(data):
            raise ValueError(f"payload object {index}: trailing bytes after decode")
        return self._validated(index, p, c)

    def _decode_many(self, indices: list[int]) -> list[AprilApproximation]:
        slices = [self.blob[int(self.offsets[k]): int(self.offsets[k + 1])]
                  for k in indices]
        buffer = np.concatenate(slices) if len(slices) > 1 else slices[0]
        p_counts = self.p_count[indices]
        c_counts = self.c_count[indices]
        expected = int(2 * (p_counts.sum() + c_counts.sum())) + 2 * len(indices)
        values = varint_decode(buffer, expected=expected)

        n = len(indices)
        per_object = 2 + 2 * p_counts + 2 * c_counts
        value_off = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(per_object, out=value_off[1:])
        if not (values[value_off[:-1]] == p_counts).all() or not (
            values[value_off[:-1] + 1 + 2 * p_counts] == c_counts
        ).all():
            raise ValueError("payload summary does not match encoded stream")

        def extract(base: np.ndarray, counts: np.ndarray):
            idx = np.repeat(base, counts) + 2 * (
                np.arange(int(counts.sum()), dtype=np.int64)
                - np.repeat(np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
            )
            gaps = values[idx]
            lengths = values[idx + 1]
            if gaps.size and (lengths < 1).any():
                raise ValueError("corrupt payload: empty or inverted interval")
            return _segmented_bounds(gaps, lengths, counts)

        p_starts, p_ends = extract(value_off[:-1] + 1, p_counts)
        c_starts, c_ends = extract(value_off[:-1] + 2 + 2 * p_counts, c_counts)
        p_off = np.concatenate(([0], np.cumsum(p_counts)))
        c_off = np.concatenate(([0], np.cumsum(c_counts)))
        out = []
        for j, k in enumerate(indices):
            p = IntervalList._from_arrays(
                p_starts[p_off[j]: p_off[j + 1]], p_ends[p_off[j]: p_off[j + 1]]
            )
            c = IntervalList._from_arrays(
                c_starts[c_off[j]: c_off[j + 1]], c_ends[c_off[j]: c_off[j + 1]]
            )
            out.append(self._validated(k, p, c))
        return out

    def _validated(self, index: int, p: IntervalList, c: IntervalList) -> AprilApproximation:
        if len(p) != int(self.p_count[index]) or len(c) != int(self.c_count[index]):
            raise ValueError(
                f"payload object {index}: decoded interval counts do not match "
                "the summary table"
            )
        return AprilApproximation(grid=self.grid, p=p, c=c)

    def _insert(self, index: int, approx: AprilApproximation) -> None:
        self._decoded[index] = approx
        self._decoded_nbytes += approx.nbytes
        while self._decoded_nbytes > self.max_decoded_bytes and len(self._decoded) > 1:
            _, evicted = self._decoded.popitem(last=False)
            self._decoded_nbytes -= evicted.nbytes


def _build_summary(
    approximations: Sequence, p_counts: np.ndarray, c_counts: np.ndarray
) -> dict:
    n = len(approximations)
    summary = {
        "p_count": p_counts,
        "c_count": c_counts,
        "p_cells": np.zeros(n, dtype=np.int64),
        "c_cells": np.zeros(n, dtype=np.int64),
        "p_first": np.zeros(n, dtype=np.int64),
        "p_last": np.zeros(n, dtype=np.int64),
        "c_first": np.zeros(n, dtype=np.int64),
        "c_last": np.zeros(n, dtype=np.int64),
    }
    for k, a in enumerate(approximations):
        if len(a.p):
            summary["p_cells"][k] = int((a.p.ends - a.p.starts).sum())
            summary["p_first"][k] = int(a.p.starts[0])
            summary["p_last"][k] = int(a.p.ends[-1])
        if len(a.c):
            summary["c_cells"][k] = int((a.c.ends - a.c.starts).sum())
            summary["c_first"][k] = int(a.c.starts[0])
            summary["c_last"][k] = int(a.c.ends[-1])
    flags = np.zeros(n, dtype=np.uint8)
    flags[p_counts == 1] |= FLAG_P_ALL
    flags[summary["c_cells"] > summary["p_cells"]] |= FLAG_PARTIAL
    summary["flags"] = flags
    return summary


class LazyAprilApproximation:
    """An object's approximation, decoded from its payload on demand.

    Duck-types :class:`~repro.raster.april.AprilApproximation` — the
    filters and kernels only touch ``grid``/``p``/``c``/``nbytes``/
    ``has_full_cells``/``check_compatible``, all provided here. Summary
    columns (``c_first`` …) are exposed as zero-decode properties so
    the decode-aware screens in :mod:`repro.filters.intermediate` can
    rule pairs out without touching the blob.
    """

    __slots__ = ("payload", "index")

    def __init__(self, payload: CompressedAprilPayload, index: int) -> None:
        self.payload = payload
        self.index = index

    @property
    def grid(self) -> RasterGrid:
        return self.payload.grid

    @property
    def p(self) -> IntervalList:
        return self.payload.decode(self.index).p

    @property
    def c(self) -> IntervalList:
        return self.payload.decode(self.index).c

    @property
    def nbytes(self) -> int:
        return self.payload.object_nbytes(self.index)

    @property
    def has_full_cells(self) -> bool:
        return bool(self.payload.p_count[self.index] > 0)

    @property
    def p_count(self) -> int:
        return int(self.payload.p_count[self.index])

    @property
    def c_count(self) -> int:
        return int(self.payload.c_count[self.index])

    @property
    def p_first(self) -> int:
        return int(self.payload.p_first[self.index])

    @property
    def p_last(self) -> int:
        return int(self.payload.p_last[self.index])

    @property
    def c_first(self) -> int:
        return int(self.payload.c_first[self.index])

    @property
    def c_last(self) -> int:
        return int(self.payload.c_last[self.index])

    def check_compatible(self, other) -> None:
        if not self.grid.compatible_with(other.grid):
            raise ValueError(
                "APRIL approximations built on different grids cannot be compared"
            )

    def __repr__(self) -> str:
        state = "decoded" if self.payload.is_decoded(self.index) else "compressed"
        return (
            f"LazyAprilApproximation(#{self.index}, |P|={self.p_count}, "
            f"|C|={self.c_count}, {state})"
        )


def block_decode(approximations: Iterable) -> None:
    """Decode every not-yet-decoded lazy approximation, batched per payload.

    The batched filters call this right before running interval kernels
    over a surviving candidate set, so blob slices are gathered and
    varint-scanned in one pass per payload instead of one tiny decode
    per property access. Plain (eager) approximations pass through
    untouched.
    """
    groups: dict[int, tuple[CompressedAprilPayload, list[int]]] = {}
    for a in approximations:
        if isinstance(a, LazyAprilApproximation) and not a.payload.is_decoded(a.index):
            payload = a.payload
            entry = groups.get(id(payload))
            if entry is None:
                groups[id(payload)] = (payload, [a.index])
            else:
                entry[1].append(a.index)
    for payload, indices in groups.values():
        payload.decode_block(indices)


__all__ = [
    "CompressedAprilPayload",
    "DEFAULT_DECODED_CACHE_BYTES",
    "FLAG_PARTIAL",
    "FLAG_P_ALL",
    "LazyAprilApproximation",
    "block_decode",
    "compression_ratio",
    "decode_approximation",
    "decode_intervals",
    "encode_approximation",
    "encode_intervals",
    "varint_decode",
    "varint_encode",
    "varint_sizes",
]
