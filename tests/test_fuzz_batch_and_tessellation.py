"""Extra fuzzing: bulk MBR classification and tessellation topology."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import generate_tessellation
from repro.filters.mbr import classify_mbr_pair
from repro.geometry import Box, Polygon
from repro.join.batch import _CASE_CODES, classify_mbr_pairs_bulk
from repro.join.objects import SpatialObject
from repro.topology import TopologicalRelation as T, most_specific_relation, relate


def box_strategy():
    return st.builds(
        lambda x, y, w, h: Box(x, y, x + w, y + h),
        st.integers(0, 40),
        st.integers(0, 40),
        st.integers(0, 15),
        st.integers(0, 15),
    )


class _FakeObject:
    """Just enough of SpatialObject for the bulk classifier."""

    def __init__(self, box):
        self.box = box


class TestBulkClassifierFuzz:
    @given(st.lists(box_strategy(), min_size=1, max_size=25),
           st.lists(box_strategy(), min_size=1, max_size=25))
    @settings(max_examples=150)
    def test_bulk_matches_scalar(self, r_boxes, s_boxes):
        r_objects = [_FakeObject(b) for b in r_boxes]
        s_objects = [_FakeObject(b) for b in s_boxes]
        pairs = [(i, j) for i in range(len(r_boxes)) for j in range(len(s_boxes))]
        codes = classify_mbr_pairs_bulk(r_objects, s_objects, pairs)
        for k, (i, j) in enumerate(pairs):
            assert int(codes[k]) == _CASE_CODES[classify_mbr_pair(r_boxes[i], s_boxes[j])]


class TestTessellationTopologyFuzz:
    """Edge-sharing tessellations are a DE-9IM stress test: every
    neighbouring pair must be *meets*, never intersects or disjoint."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_all_neighbour_pairs_meet(self, seed):
        rng = np.random.default_rng(seed)
        cells = generate_tessellation(rng, Box(0, 0, 120, 120), 4, 3, edge_points=5)
        for i in range(len(cells)):
            for j in range(i + 1, len(cells)):
                if not cells[i].bbox.intersects(cells[j].bbox):
                    continue
                relation = most_specific_relation(relate(cells[i], cells[j]))
                assert relation in (T.MEETS, T.DISJOINT), (i, j, relation)

    def test_tessellation_union_area(self):
        rng = np.random.default_rng(9)
        region = Box(0, 0, 90, 60)
        cells = generate_tessellation(rng, region, 3, 2, edge_points=4)
        assert sum(c.area for c in cells) == pytest.approx(region.area, rel=1e-9)
