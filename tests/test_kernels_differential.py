"""Differential suite: vectorised kernels vs the reference loops.

The intermediate filter *proves* topological relations from the interval
primitives, so a wrong kernel silently corrupts join answers. This suite
pits every vectorised kernel against its ``_reference_*`` loop on ~10k
generated interval-list pairs biased toward the nasty cases — adjacent
intervals, single-cell intervals, empty lists, identical lists,
containment chains — plus exact-equality checks for the bulk rasteriser
and the Hilbert lookup-table fast path, and end-to-end equivalence of
the batched filter entry points.
"""

import math
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.filters.intermediate import (
    batch_c_overlaps,
    intermediate_filter,
    intermediate_filter_batch,
)
from repro.filters.mbr import classify_mbr_pair
from repro.geometry import Box, Polygon
from repro.raster import RasterGrid, build_april, kernels, rasterize_polygon
from repro.raster.hilbert import (
    _reference_hilbert_xy2d_bulk,
    hilbert_xy2d,
    hilbert_xy2d_bulk,
)
from repro.raster.intervals import EMPTY_INTERVALS, IntervalList

N_PAIRS = 10_000
#: Set operations build whole lists per op; a subset keeps the suite fast.
N_SET_OP_PAIRS = 2_500


# ----------------------------------------------------------------------
# generators (biased toward the nasty cases)
# ----------------------------------------------------------------------
def random_list(rng: np.random.Generator) -> IntervalList:
    kind = int(rng.integers(0, 6))
    if kind == 0:
        return EMPTY_INTERVALS
    if kind == 1:  # one single-cell interval
        c = int(rng.integers(0, 100))
        return IntervalList([(c, c + 1)])
    if kind == 2:  # adjacency-heavy: dense cells with pinhole gaps
        cells = np.arange(0, 64)
        holes = rng.integers(0, 64, size=rng.integers(1, 6))
        return IntervalList.from_cells(np.setdiff1d(cells, holes))
    if kind == 3:  # sparse singletons
        return IntervalList.from_cells(rng.integers(0, 400, size=rng.integers(0, 20)))
    if kind == 4:  # medium density
        return IntervalList.from_cells(rng.integers(0, 120, size=rng.integers(0, 60)))
    # long intervals with varied gaps
    starts = np.cumsum(rng.integers(1, 12, size=rng.integers(1, 16)))
    lengths = rng.integers(1, 8, size=starts.size)
    return IntervalList([(int(s), int(s + l)) for s, l in zip(starts, lengths)])


def random_pair(rng: np.random.Generator) -> tuple[IntervalList, IntervalList]:
    x = random_list(rng)
    kind = int(rng.integers(0, 6))
    if kind == 0:  # identical lists
        return x, IntervalList(list(x))
    if kind == 1:  # containment chain: y ⊇ x
        return x, x.union(random_list(rng))
    if kind == 2:  # x shifted by one cell: adjacency everywhere
        return x, IntervalList([(s + 1, e + 1) for s, e in x] or [(0, 1)])
    if kind == 3:  # x against its own complement-ish difference
        y = random_list(rng)
        return x.difference(y), y
    return x, random_list(rng)


@pytest.fixture(scope="module")
def pair_stream():
    rng = np.random.default_rng(20260806)
    return [random_pair(rng) for _ in range(N_PAIRS)]


# ----------------------------------------------------------------------
# interval relations and set operations
# ----------------------------------------------------------------------
class TestIntervalKernelsDifferential:
    def test_relations_match_reference(self, pair_stream):
        for x, y in pair_stream:
            assert x.overlaps(y) == x._reference_overlaps(y)
            assert y.overlaps(x) == y._reference_overlaps(x)
            assert x.inside(y) == x._reference_inside(y)
            assert y.inside(x) == y._reference_inside(x)
            assert x.matches(y) == x._reference_matches(y)

    def test_set_ops_match_reference(self, pair_stream):
        for x, y in pair_stream[:N_SET_OP_PAIRS]:
            assert x.intersection(y) == x._reference_intersection(y)
            assert x.union(y) == x._reference_union(y)
            assert x.difference(y) == x._reference_difference(y)

    def test_set_ops_canonical_form(self, pair_stream):
        # Results must satisfy the IntervalList invariant exactly:
        # sorted, disjoint, non-adjacent, no empty intervals.
        for x, y in pair_stream[:N_SET_OP_PAIRS]:
            for il in (x.intersection(y), x.union(y), x.difference(y)):
                items = list(il)
                assert all(s < e for s, e in items)
                assert all(e1 < s2 for (_, e1), (s2, _) in zip(items, items[1:]))

    def test_construction_matches_reference_coalesce(self):
        rng = np.random.default_rng(7)
        for _ in range(2000):
            n = int(rng.integers(0, 25))
            starts = rng.integers(0, 200, size=n)
            lengths = rng.integers(1, 15, size=n)
            pairs = [(int(s), int(s + l)) for s, l in zip(starts, lengths)]
            fast = IntervalList(pairs)
            with kernels.reference_kernels():
                ref = IntervalList(pairs)
            assert np.array_equal(fast.starts, ref.starts)
            assert np.array_equal(fast.ends, ref.ends)

    def test_batch_kernels_match_pairwise(self, pair_stream):
        rng = np.random.default_rng(3)
        lists = [x for x, _ in pair_stream[:400]]
        for _ in range(200):
            probe = lists[int(rng.integers(0, len(lists)))]
            group = [lists[int(k)] for k in rng.integers(0, len(lists), size=9)]
            cat_s, cat_e, offsets = kernels.pack_lists(group)
            got = kernels.overlaps_batch(
                probe.starts, probe.ends, cat_s, cat_e, offsets
            )
            assert got.tolist() == [probe.overlaps(y) for y in group]
            got = kernels.inside_batch(cat_s, cat_e, offsets, probe.starts, probe.ends)
            assert got.tolist() == [y.inside(probe) for y in group]


# ----------------------------------------------------------------------
# rasterisation (bit-identical grids)
# ----------------------------------------------------------------------
def _blob(n, radius=80.0, cx=500.0, cy=500.0):
    pts = []
    for k in range(n):
        a = 2 * math.pi * k / n
        r = radius * (1 + 0.25 * math.sin(5 * a))
        pts.append((cx + r * math.cos(a), cy + r * math.sin(a)))
    return Polygon(pts)


class TestRasterizeDifferential:
    GRID = RasterGrid(Box(0, 0, 1000, 1000), order=8)

    POLYGONS = [
        _blob(7),
        _blob(64),
        Polygon.box(100, 100, 300, 300),
        Polygon.box(0, 0, 1000, 1000),  # hugs the dataspace border
        Polygon([(0, 0), (1000, 0), (500, 1000)]),
        Polygon([(10.5, 10.5), (400.25, 11.0), (11.0, 400.75)]),  # thin sliver
        # Edges running exactly along grid lines and corner touches.
        Polygon([(101.5625, 200.0), (300.0, 200.0), (300.0, 203.125)]),
    ]

    @pytest.mark.parametrize("k", range(len(POLYGONS)))
    def test_bulk_marking_bit_identical(self, k):
        polygon = self.POLYGONS[k]
        fast = rasterize_polygon(polygon, self.GRID)
        with kernels.reference_kernels():
            ref = rasterize_polygon(polygon, self.GRID)
        assert np.array_equal(fast.partial, ref.partial)
        assert np.array_equal(fast.full, ref.full)

    def test_random_blobs_bit_identical(self):
        rng = np.random.default_rng(5)
        for _ in range(15):
            polygon = _blob(
                int(rng.integers(3, 40)),
                radius=float(rng.uniform(5, 200)),
                cx=float(rng.uniform(150, 850)),
                cy=float(rng.uniform(150, 850)),
            )
            fast = rasterize_polygon(polygon, self.GRID)
            with kernels.reference_kernels():
                ref = rasterize_polygon(polygon, self.GRID)
            assert np.array_equal(fast.partial, ref.partial)
            assert np.array_equal(fast.full, ref.full)


# ----------------------------------------------------------------------
# Hilbert lookup-table fast path
# ----------------------------------------------------------------------
class TestHilbertDifferential:
    @pytest.mark.parametrize("order", range(1, 7))
    def test_exhaustive_small_orders(self, order):
        side = 1 << order
        ys, xs = np.meshgrid(np.arange(side), np.arange(side))
        xs, ys = xs.ravel(), ys.ravel()
        fast = hilbert_xy2d_bulk(order, xs, ys)
        ref = _reference_hilbert_xy2d_bulk(order, xs.copy(), ys.copy())
        scalar = [hilbert_xy2d(order, int(a), int(b)) for a, b in zip(xs, ys)]
        assert np.array_equal(fast, ref)
        assert fast.tolist() == scalar

    @pytest.mark.parametrize("order", (8, 10, 13, 16))
    def test_random_large_orders(self, order):
        rng = np.random.default_rng(order)
        xs = rng.integers(0, 1 << order, size=4000)
        ys = rng.integers(0, 1 << order, size=4000)
        fast = hilbert_xy2d_bulk(order, xs, ys)
        assert np.array_equal(fast, _reference_hilbert_xy2d_bulk(order, xs.copy(), ys.copy()))

    def test_empty_and_validation(self):
        assert hilbert_xy2d_bulk(4, np.empty(0, int), np.empty(0, int)).size == 0
        with pytest.raises(ValueError):
            hilbert_xy2d_bulk(4, np.array([16]), np.array([0]))


# ----------------------------------------------------------------------
# batched intermediate filter == scalar intermediate filter
# ----------------------------------------------------------------------
class TestBatchedFilterDifferential:
    def test_batch_matches_scalar_on_random_objects(self):
        rng = np.random.default_rng(11)
        grid = RasterGrid(Box(0, 0, 1000, 1000), order=7)
        polygons = []
        for _ in range(40):
            x0, y0 = rng.uniform(0, 900, size=2)
            w, h = rng.uniform(5, 300, size=2)
            polygons.append(Polygon.box(x0, y0, min(x0 + w, 1000), min(y0 + h, 1000)))
        for _ in range(10):
            polygons.append(
                _blob(
                    int(rng.integers(5, 24)),
                    radius=float(rng.uniform(20, 120)),
                    cx=float(rng.uniform(200, 800)),
                    cy=float(rng.uniform(200, 800)),
                )
            )
        approxes = [build_april(p, grid) for p in polygons]

        items = []
        for _ in range(600):
            i, j = rng.integers(0, len(polygons), size=2)
            case = classify_mbr_pair(polygons[i].bbox, polygons[j].bbox)
            connected = bool(rng.integers(0, 2))
            items.append((case, approxes[i], approxes[j], connected))

        batched = intermediate_filter_batch(items)
        for item, got in zip(items, batched):
            assert got == intermediate_filter(*item)

        hits = batch_c_overlaps([(r, s) for _, r, s, _ in items])
        assert hits.tolist() == [r.c.overlaps(s.c) for _, r, s, _ in items]


# ----------------------------------------------------------------------
# the switch itself, and the API type boundary
# ----------------------------------------------------------------------
class TestKernelSwitch:
    def test_runtime_toggle(self):
        initial = kernels.reference_kernels_enabled()
        try:
            kernels.set_reference_kernels(False)
            with kernels.reference_kernels():
                assert kernels.reference_kernels_enabled()
                with kernels.reference_kernels(False):
                    assert not kernels.reference_kernels_enabled()
                assert kernels.reference_kernels_enabled()
            assert not kernels.reference_kernels_enabled()
        finally:
            kernels.set_reference_kernels(initial)

    def test_env_variable_honoured_at_import(self):
        code = (
            "from repro.raster import kernels; "
            "print(kernels.reference_kernels_enabled())"
        )
        env = dict(os.environ, REPRO_REFERENCE_KERNELS="1")
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert out.stdout.strip() == "True", out.stderr

    @pytest.mark.parametrize("reference", (False, True))
    def test_predicates_return_python_bool(self, reference):
        # numpy scalars must not leak through the IntervalList API.
        with kernels.reference_kernels(reference):
            x = IntervalList([(2, 5), (9, 10)])
            y = IntervalList([(0, 20)])
            assert isinstance(x.covers_cell(3), bool)
            assert isinstance(x.covers_cell(8), bool)
            assert isinstance(x.overlaps(y), bool)
            assert isinstance(x.inside(y), bool)
            assert isinstance(x.contains(y), bool)
            assert isinstance(x.matches(y), bool)
            assert isinstance(x.overlaps(EMPTY_INTERVALS), bool)
            assert isinstance(EMPTY_INTERVALS.inside(x), bool)
