"""The warm-cache join engine: one front door for every execution mode.

Before PR 4 each way of running a join had its own entry point and its
own return shape — ``TopologyJoin`` for in-memory serial/parallel runs,
``run_find_relation_batch`` for the vectorised path, and
``DiskPartitionedJoin`` for out-of-core PBSM. The :class:`Engine`
subsumes them: :meth:`Engine.join` accepts datasets in any form (index
directories, ``.wkt``/``.geojson`` files, polygon lists, or
:class:`~repro.store.dataset.SpatialDataset` objects), picks the
execution mode from one argument, and always returns the same
:class:`~repro.join.run.JoinRun` envelope.

The engine memoises the expensive intermediates in bounded LRU caches:

- **datasets** — parsed geometry collections, keyed by resolved path +
  a content fingerprint, so a mutated source file is a cache *miss*
  (never a stale hit);
- **object sets** — ``SpatialObject`` lists per (dataset content hash,
  grid), where APRIL approximations live; backed by the dataset's
  persistent payloads, so a warm join — even in a brand-new process —
  performs zero rasterisation;
- **candidate pairs** — the plane-sweep MBR join per dataset pair.

Cache traffic is observable through the metrics registry
(``repro_store_cache_total{cache,outcome}``,
``repro_store_build_seconds{what}``), and the warm-path proof counter
``repro_april_built_total`` stays at zero for a fully warm run.

Since PR 6 the engine also owns the ``mode="auto"`` decision: a
calibrated cost model (:mod:`repro.optimizer.cost`) prices each
execution mode from the input cardinalities, a selectivity-histogram
estimate of the candidate pairs, the core count and the cache state,
and the cheapest mode runs — with the old workers-based rule as the
calibration-free fallback. Decisions are recorded in
``JoinRun.meta["cost_model"]`` and ``repro_cost_model_*``
counters/spans.
"""

from __future__ import annotations

import atexit
import os
import tempfile
import time
from collections import OrderedDict
from pathlib import Path
from typing import Sequence

from repro.geometry.box import Box
from repro.join.mbr_join import plane_sweep_mbr_join
from repro.join.objects import SpatialObject
from repro.join.pipeline import PIPELINES
from repro.join.run import JoinResult, JoinRun
from repro.obs.metrics import get_registry, metrics_enabled
from repro.obs.resources import resources_enabled, run_resources
from repro.obs.trace import add_span, trace
from repro.optimizer.cost import (
    CalibrationProfile,
    CostModel,
    Decision,
    JoinFeatures,
    fallback_decision,
    load_cost_model,
)
from repro.raster.compression import LazyAprilApproximation
from repro.raster.grid import RasterGrid, pad_dataspace
from repro.store.dataset import (
    MANIFEST_NAME,
    SpatialDataset,
    _observe_cache,
    content_hash,
    file_sha256,
)
from repro.topology.de9im import TopologicalRelation

#: Execution modes :meth:`Engine.join` understands.
MODES = ("auto", "serial", "batch", "parallel", "disk")


class _LRU:
    """A bounded insertion/access-ordered cache with obs counters."""

    def __init__(self, capacity: int, name: str) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._data: OrderedDict = OrderedDict()

    def get(self, key):
        """The cached value or None; records a hit/miss counter either way."""
        try:
            value = self._data[key]
        except KeyError:
            _observe_cache(self.name, "miss")
            return None
        self._data.move_to_end(key)
        _observe_cache(self.name, "hit")
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            _observe_cache(self.name, "evict")

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()


def _grid_identity(grid: RasterGrid) -> tuple:
    ds = grid.dataspace
    return (grid.order, ds.xmin, ds.ymin, ds.xmax, ds.ymax)


class Engine:
    """Resolves datasets, memoises their derived state, runs joins.

    Parameters bound the LRU caches; an engine with the defaults keeps
    a handful of datasets fully warm. One engine instance is not
    thread-safe; share it across sequential queries only.

    ``calibration`` wires up the cost model behind ``mode="auto"``:

    - ``None`` (default) — no model; auto falls back to the historical
      workers-based rule, bit-identically. Library construction stays
      deterministic regardless of what profiles exist on the machine.
    - ``"auto"`` — discover the machine's persisted profile (written by
      ``python -m repro calibrate``; see
      :func:`repro.optimizer.cost.default_profile_path`). Absent or
      stale profiles silently fall back. This is what
      :func:`default_engine` (and therefore the CLI) uses.
    - a path, :class:`CalibrationProfile` or :class:`CostModel` — use
      exactly that calibration (paths must load; errors propagate).
    """

    def __init__(
        self,
        *,
        max_datasets: int = 8,
        max_object_sets: int = 16,
        max_pair_sets: int = 32,
        max_payload_sets: int = 16,
        max_decoded_payload_bytes: int | None = None,
        calibration: str | Path | CalibrationProfile | CostModel | None = None,
    ) -> None:
        self._datasets = _LRU(max_datasets, "dataset")
        self._objects = _LRU(max_object_sets, "objects")
        self._pairs = _LRU(max_pair_sets, "pairs")
        self._histograms = _LRU(max_pair_sets, "histogram")
        self._payloads = _LRU(max_payload_sets, "payload")
        self.max_decoded_payload_bytes = max_decoded_payload_bytes
        self.cost_model = self._resolve_calibration(calibration)
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the engine's warm state deterministically.

        Drains every LRU (datasets, object sets, pair sets, histograms,
        decoded payloads) so their memory — decoded APRIL blobs in
        particular — is reclaimable now rather than at interpreter
        teardown, and marks the engine closed: further :meth:`join` /
        :meth:`execute` / :meth:`dataset` calls raise
        :class:`RuntimeError`. Idempotent, so shutdown paths (service
        drain, context-manager exit, the default engine's atexit hook)
        can all call it without coordinating.
        """
        if self._closed:
            return
        self.clear()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("engine is closed; create a new Engine")

    def __enter__(self) -> "Engine":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @staticmethod
    def _resolve_calibration(calibration) -> CostModel | None:
        if calibration is None:
            return None
        if isinstance(calibration, CostModel):
            return calibration
        if isinstance(calibration, CalibrationProfile):
            return CostModel(calibration)
        if calibration == "auto":
            return load_cost_model()
        return load_cost_model(calibration)

    # ------------------------------------------------------------------
    # dataset resolution
    # ------------------------------------------------------------------
    def dataset(
        self,
        source,
        *,
        on_error: str = "raise",
        strict: bool = True,
        quarantine=None,
    ) -> SpatialDataset:
        """Resolve ``source`` into a (possibly cached) dataset.

        Accepts a :class:`SpatialDataset` (returned as-is), a path to an
        index directory (must hold a ``manifest.json``), a path to a
        ``.wkt``/``.geojson`` file, or a sequence of polygons. Cache
        keys embed a content fingerprint — the manifest bytes for an
        index, the file bytes for a source file, the geometry content
        hash for in-memory inputs — so mutating the source invalidates
        the entry instead of serving stale geometry.

        ``on_error="rebuild"`` repairs an unusable index directory in
        place (see :meth:`SpatialDataset.open`); ``strict=False`` loads
        geometry files leniently, skipping malformed rows into
        ``quarantine`` (the lenient flag is part of the cache key, and a
        cache hit leaves ``quarantine`` untouched — rows are only
        quarantined when the file is actually parsed).
        """
        self._check_open()
        if isinstance(source, SpatialDataset):
            return source
        if isinstance(source, (str, Path)):
            path = Path(source)
            if path.is_dir():
                manifest = path / MANIFEST_NAME
                fingerprint = file_sha256(manifest) if manifest.exists() else "absent"
                key = ("index", str(path.resolve()), fingerprint)
                cached = self._datasets.get(key)
                if cached is None:
                    cached = SpatialDataset.open(path, on_error=on_error)
                    self._datasets.put(key, cached)
                return cached
            key = ("file", str(path.resolve()), file_sha256(path), strict)
            cached = self._datasets.get(key)
            if cached is None:
                from repro.store.dataset import load_geometry_file

                cached = SpatialDataset(
                    load_geometry_file(path, strict=strict, quarantine=quarantine),
                    name=path.stem,
                    source=path,
                    source_sha256=key[2],
                )
                self._datasets.put(key, cached)
            return cached
        polygons = list(source)
        key = ("mem", content_hash(polygons))
        cached = self._datasets.get(key)
        if cached is None:
            cached = SpatialDataset.from_polygons(polygons)
            self._datasets.put(key, cached)
        return cached

    # ------------------------------------------------------------------
    # derived state
    # ------------------------------------------------------------------
    def join_grid(
        self, r: SpatialDataset, s: SpatialDataset, grid_order: int
    ) -> RasterGrid:
        """The shared grid a join between ``r`` and ``s`` runs on: the
        padded union of both extents (identical to the historical
        ``TopologyJoin.grid``)."""
        return RasterGrid(
            pad_dataspace(Box.union_all([r.extent, s.extent])), order=grid_order
        )

    def objects(
        self,
        dataset: SpatialDataset,
        grid: RasterGrid,
        *,
        with_april: bool = True,
        workers: int | None = 1,
    ) -> list[SpatialObject]:
        """The dataset's ``SpatialObject`` list for ``grid``.

        Object lists are cached per (content hash, grid); APRIL
        approximations are attached lazily (``with_april``) and come
        from :meth:`SpatialDataset.approximations`, i.e. from the
        persistent payload when one exists — the warm path that skips
        rasterisation entirely.
        """
        key = (dataset.content_hash, _grid_identity(grid))
        objects = self._objects.get(key)
        if objects is None:
            objects = [
                SpatialObject(oid=oid, polygon=polygon, box=box)
                for oid, (polygon, box) in enumerate(
                    zip(dataset.geometries, dataset.boxes)
                )
            ]
            self._objects.put(key, objects)
        if with_april and objects and objects[0].april is None:
            aprils = self._approximations(dataset, grid, workers)
            for obj, approx in zip(objects, aprils):
                obj.april = approx
        return objects

    def _approximations(self, dataset: SpatialDataset, grid: RasterGrid, workers):
        """The dataset's approximation list for ``grid``, LRU-cached.

        Compressed payloads carry their own bounded decoded-object
        cache, so keeping the *list* alive across object-set rebuilds
        is what lets repeated warm joins amortise decode work instead
        of re-reading and re-decoding the blob every time. The entry is
        keyed like the object set (content hash + grid identity); a
        mutated dataset therefore misses and reloads.
        """
        key = (dataset.content_hash, _grid_identity(grid))
        aprils = self._payloads.get(key)
        if aprils is None:
            aprils = dataset.approximations(grid, workers=workers)
            if (
                self.max_decoded_payload_bytes is not None
                and aprils
                and isinstance(aprils[0], LazyAprilApproximation)
            ):
                aprils[0].payload.max_decoded_bytes = self.max_decoded_payload_bytes
            self._payloads.put(key, aprils)
        return aprils

    def pairs(self, r: SpatialDataset, s: SpatialDataset) -> list[tuple[int, int]]:
        """The MBR filter step for the dataset pair, cached and sorted."""
        key = (r.content_hash, s.content_hash)
        pairs = self._pairs.get(key)
        if pairs is None:
            with trace("mbr_filter_step") as span:
                pairs = plane_sweep_mbr_join(r.boxes, s.boxes)
                pairs.sort()
                if span is not None:
                    span.attrs["pairs"] = len(pairs)
            self._pairs.put(key, pairs)
        return pairs

    def warm(self, r, s, *, grid_order: int = 11, workers: int | None = 1) -> dict:
        """Pre-load everything a join between ``r`` and ``s`` touches.

        Resolves both datasets, attaches their APRIL approximations for
        the shared grid, and runs the MBR filter — filling the same
        LRUs :meth:`join` would, without executing the join. The
        serving layer calls this before forking its worker pool so
        every worker inherits warm caches copy-on-write instead of
        warming ``N`` times; returns a small summary for logs.
        """
        self._check_open()
        rd = self.dataset(r)
        sd = self.dataset(s)
        grid = self.join_grid(rd, sd, grid_order)
        self.objects(rd, grid, workers=workers)
        self.objects(sd, grid, workers=workers)
        pairs = self.pairs(rd, sd)
        return {
            "r": rd.name,
            "s": sd.name,
            "grid_order": grid_order,
            "r_count": len(rd),
            "s_count": len(sd),
            "pairs": len(pairs),
        }

    def clear(self) -> None:
        """Drop every cached dataset, object set, pair set, histogram."""
        self._datasets.clear()
        self._objects.clear()
        self._pairs.clear()
        self._histograms.clear()
        self._payloads.clear()

    # ------------------------------------------------------------------
    # cost-model support
    # ------------------------------------------------------------------
    def _histogram(self, dataset: SpatialDataset, extent: Box):
        """The dataset's selectivity histogram on ``extent``, cached."""
        from repro.optimizer.selectivity import SpatialHistogram

        key = (dataset.content_hash, extent.xmin, extent.ymin, extent.xmax, extent.ymax)
        hist = self._histograms.get(key)
        if hist is None:
            hist = SpatialHistogram.build(dataset.boxes, extent=extent)
            self._histograms.put(key, hist)
        return hist

    def estimate_pairs(self, r: SpatialDataset, s: SpatialDataset) -> float:
        """Estimated candidate-pair cardinality of the MBR join, from
        the selectivity histograms — without touching the data. When
        the exact pair set is already cached (a warm repeat of the same
        join), its length is returned instead."""
        from repro.optimizer.selectivity import estimate_join_candidates

        cached = self._pairs._data.get((r.content_hash, s.content_hash))
        if cached is not None:
            return float(len(cached))
        extent = pad_dataspace(Box.union_all([r.extent, s.extent]))
        return estimate_join_candidates(
            self._histogram(r, extent), self._histogram(s, extent)
        )

    def _april_warm(self, dataset: SpatialDataset, grid: RasterGrid) -> bool:
        """Whether approximations for ``grid`` are already available —
        attached to a cached object set or persisted in the index —
        i.e. whether a join on this grid skips rasterisation."""
        objects = self._objects._data.get((dataset.content_hash, _grid_identity(grid)))
        if objects and objects[0].april is not None:
            return True
        payload = dataset.approximation_path(grid)
        return payload is not None and payload.exists()

    def _decide_auto(
        self,
        features: JoinFeatures,
        candidates: Sequence[str],
    ) -> Decision:
        """Resolve ``mode="auto"`` into a concrete mode.

        With a cost model, the cheapest predicted candidate wins; the
        decision (and the full prediction table) is recorded as a span
        and in ``repro_cost_model_*`` counters. Without one, the
        historical workers-based rule applies — on *resolved* workers,
        so ``workers=None`` on a 1-CPU machine lands on serial.
        """
        t0 = time.perf_counter()
        if self.cost_model is not None:
            decision = self.cost_model.decide(features, candidates)
        else:
            decision = fallback_decision(features.workers)
        self._decide_seconds = time.perf_counter() - t0
        if metrics_enabled():
            registry = get_registry()
            registry.inc(
                "repro_cost_model_decisions_total",
                mode=decision.mode,
                source=decision.source,
            )
            for mode, seconds in decision.predicted.items():
                registry.observe(
                    "repro_cost_model_predicted_seconds", seconds, mode=mode
                )
        return decision

    def _attach_resources(self, run: JoinRun) -> None:
        """Stamp the resource summary onto the run envelope when the
        accounting is enabled; a no-op (one flag check) otherwise."""
        if resources_enabled():
            summary = run_resources(
                get_registry() if metrics_enabled() else None
            )
            if summary is not None:
                run.meta["resources"] = summary

    def _observe_auto(self, decision: Decision, run: JoinRun) -> None:
        """Fold an auto-decided run's wall time back into the model and
        attach the decision to the run envelope."""
        run.meta["cost_model"] = decision.to_meta()
        # Emitted after the run so the join's own span tree stays the
        # first exported root (the shape trace consumers pin on).
        features = decision.features
        add_span(
            "cost_model_decision",
            getattr(self, "_decide_seconds", 0.0),
            decision=decision.mode,
            source=decision.source,
            pairs=round(features.pairs, 1) if features is not None else None,
            workers=features.workers if features is not None else None,
        )
        if (
            self.cost_model is not None
            and decision.source == "calibration"
            and decision.features is not None
        ):
            self.cost_model.observe_run(run.mode, decision.features, run.wall_seconds)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def join(
        self,
        r,
        s,
        *,
        method: str = "P+C",
        grid_order: int = 11,
        mode: str = "auto",
        predicate: TopologicalRelation | None = None,
        workers: int | None = 1,
        include_disjoint: bool = False,
        chunk_size: int | None = None,
        partition: str = "chunks",
        tiles_per_dim: int | None = None,
        workdir: str | Path | None = None,
        partition_timeout: float | None = None,
        max_retries: int | None = None,
        on_index_error: str = "raise",
        strict: bool = True,
    ) -> JoinRun:
        """Join ``r`` with ``s`` and return one :class:`JoinRun`,
        whatever the execution mode.

        ``mode="auto"`` consults the engine's cost model (see the class
        docstring's ``calibration`` parameter): input cardinalities, a
        selectivity-histogram estimate of the candidate-pair count, the
        machine's core count and the cache state (warm payloads vs cold
        rasterisation) price out serial vs parallel (vs disk, above the
        profile's pair threshold), and the cheapest predicted mode runs.
        The decision, its source and the full prediction table land in
        ``run.meta["cost_model"]`` and in ``repro_cost_model_*``
        counters/spans. Engines without calibration fall back to the
        historical rule — parallel iff the *resolved* worker count
        exceeds one (``workers=None`` resolves through
        ``default_workers()`` first, so a 1-CPU machine runs serial).

        ``"batch"`` uses the vectorised P+C runner; ``"disk"`` runs the
        out-of-core PBSM join (``workdir`` holds the partition files; a
        temporary directory when omitted). ``predicate`` switches from
        find-relation to a relate_p join.

        Fault-tolerance knobs: ``partition_timeout``/``max_retries``
        bound the supervised parallel fan-out (see
        :mod:`repro.resilience.supervisor`); ``on_index_error="rebuild"``
        repairs unusable index directories instead of raising;
        ``strict=False`` quarantines malformed source-file rows instead
        of aborting (the skipped rows land in
        ``run.meta["quarantine"]``).
        """
        self._check_open()
        if method not in PIPELINES:
            raise KeyError(f"unknown method {method!r}; available: {list(PIPELINES)}")
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; available: {list(MODES)}")
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        from repro.resilience.quarantine import QuarantineReport

        r_quarantine = QuarantineReport()
        s_quarantine = QuarantineReport()
        rd = self.dataset(
            r, on_error=on_index_error, strict=strict, quarantine=r_quarantine
        )
        sd = self.dataset(
            s, on_error=on_index_error, strict=strict, quarantine=s_quarantine
        )
        decision: Decision | None = None
        if mode == "auto":
            from repro.parallel.executor import resolve_workers

            effective = resolve_workers(workers)
            needs_april = predicate is not None or PIPELINES[method].uses_april
            grid = self.join_grid(rd, sd, grid_order)
            features = JoinFeatures(
                r_count=len(rd),
                s_count=len(sd),
                pairs=self.estimate_pairs(rd, sd),
                workers=effective,
                cpu_count=os.cpu_count() or 1,
                warm=self._april_warm(rd, grid) and self._april_warm(sd, grid),
                needs_april=needs_april,
            )
            # Auto arbitrates serial vs batch vs parallel (serial first,
            # so calibration ties — like bench-seeded profiles that carry
            # serial's per-pair cost for batch — keep the historical
            # pick); disk joins the race only above the profile's pair
            # threshold. Batch implements the P+C find-relation pipeline
            # only, so other methods and relate_p joins keep the old set.
            candidates = ["serial"]
            if predicate is None and method == "P+C":
                candidates.append("batch")
            candidates.append("parallel")
            if predicate is None:
                candidates.append("disk")
            decision = self._decide_auto(features, candidates)
            mode = decision.mode
            workers = effective
        if mode == "disk":
            if predicate is not None:
                raise ValueError("disk mode does not support relate_p predicates")
            run = self._disk_join(
                rd,
                sd,
                method=method,
                grid_order=grid_order,
                tiles_per_dim=tiles_per_dim or 4,
                include_disjoint=include_disjoint,
                workdir=workdir,
            )
            if decision is not None:
                self._observe_auto(decision, run)
            self._attach_resources(run)
            return run
        with trace("topology_join", method=method, mode=mode):
            grid = self.join_grid(rd, sd, grid_order)
            needs_april = predicate is not None or PIPELINES[method].uses_april
            r_objects = self.objects(rd, grid, with_april=needs_april, workers=workers)
            s_objects = self.objects(sd, grid, with_april=needs_april, workers=workers)
            pairs = self.pairs(rd, sd)
            run = self.execute(
                method,
                r_objects,
                s_objects,
                pairs,
                mode=mode,
                predicate=predicate,
                workers=workers,
                include_disjoint=include_disjoint,
                chunk_size=chunk_size,
                partition=partition,
                tiles_per_dim=tiles_per_dim,
                partition_timeout=partition_timeout,
                max_retries=max_retries,
            )
        if decision is not None:
            self._observe_auto(decision, run)
        run.meta.update(
            r=rd.name, s=sd.name, r_count=len(rd), s_count=len(sd), grid_order=grid_order
        )
        quarantined = [q.to_dict() for q in (r_quarantine, s_quarantine) if q]
        if quarantined:
            run.meta["quarantine"] = quarantined
        return run

    def execute(
        self,
        method: str,
        r_objects: Sequence[SpatialObject],
        s_objects: Sequence[SpatialObject],
        pairs: Sequence[tuple[int, int]],
        *,
        mode: str = "auto",
        predicate: TopologicalRelation | None = None,
        workers: int | None = 1,
        include_disjoint: bool = False,
        chunk_size: int | None = None,
        partition: str = "chunks",
        tiles_per_dim: int | None = None,
        partition_timeout: float | None = None,
        max_retries: int | None = None,
    ) -> JoinRun:
        """Run one verification pass over prepared objects and pairs.

        The lower-level sibling of :meth:`join` for callers that manage
        their own objects (``TopologyJoin`` delegates here). Implements
        the in-memory modes only: ``"disk"`` (which re-partitions whole
        datasets on disk) and unknown modes raise :class:`ValueError`
        instead of silently running something else. ``mode="auto"``
        decides exactly like :meth:`join` — cost model when the engine
        has one (with the *exact* pair count as the cardinality
        feature), resolved-workers rule otherwise.
        """
        from repro.parallel import run_find_relation_parallel, run_relate_parallel
        from repro.parallel.executor import resolve_workers

        self._check_open()
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; available: {list(MODES)}")
        if mode == "disk":
            raise ValueError(
                "execute() runs in-memory modes only; disk joins re-partition "
                "whole datasets on disk — use Engine.join(..., mode='disk')"
            )
        decision: Decision | None = None
        if mode == "auto":
            effective = resolve_workers(workers)
            features = JoinFeatures(
                r_count=len(r_objects),
                s_count=len(s_objects),
                pairs=float(len(pairs)),
                workers=effective,
                cpu_count=os.cpu_count() or 1,
                warm=True,  # objects arrive prepared; nothing left to rasterise
                needs_april=predicate is not None or PIPELINES[method].uses_april,
            )
            candidates = ["serial"]
            if predicate is None and method == "P+C":
                candidates.append("batch")
            candidates.append("parallel")
            decision = self._decide_auto(features, candidates)
            mode = decision.mode
            workers = effective
        effective = 1 if mode == "serial" else workers

        if predicate is not None:
            if mode not in ("serial", "parallel"):
                raise ValueError(f"relate_p joins support serial/parallel, not {mode!r}")
            relate_run = run_relate_parallel(
                predicate,
                r_objects,
                s_objects,
                pairs,
                workers=effective,
                chunk_size=chunk_size,
                partition=partition,
                tiles_per_dim=tiles_per_dim,
                partition_timeout=partition_timeout,
                max_retries=max_retries,
            )
            run = JoinRun(
                results=[
                    JoinResult(i, j, predicate, None) for i, j in relate_run.matches
                ],
                stats=relate_run.stats,
                method=relate_run.stats.method,
                mode=mode,
                kind="relate",
                predicate=predicate,
                wall_seconds=relate_run.wall_seconds,
                workers=relate_run.workers,
                partitions=relate_run.partitions,
            )
            if decision is not None:
                self._observe_auto(decision, run)
            self._attach_resources(run)
            return run

        if mode == "batch":
            from repro.join.batch import run_find_relation_batch_outcomes

            if method != "P+C":
                raise ValueError(
                    f"batch mode implements the P+C pipeline only, not {method!r}"
                )
            start = time.perf_counter()
            outcomes, stats = run_find_relation_batch_outcomes(
                r_objects, s_objects, pairs
            )
            wall = time.perf_counter() - start
            run_workers, partitions = 1, 1
        else:
            find_run = run_find_relation_parallel(
                method,
                r_objects,
                s_objects,
                pairs,
                workers=effective,
                chunk_size=chunk_size,
                partition=partition,
                tiles_per_dim=tiles_per_dim,
                partition_timeout=partition_timeout,
                max_retries=max_retries,
            )
            outcomes, stats = find_run.results, find_run.stats
            wall = find_run.wall_seconds
            run_workers, partitions = find_run.workers, find_run.partitions

        results = [
            JoinResult(i, j, relation, filtered)
            for i, j, relation, filtered in outcomes
            if include_disjoint or relation is not TopologicalRelation.DISJOINT
        ]
        run = JoinRun(
            results=results,
            stats=stats,
            method=method,
            mode=mode,
            wall_seconds=wall,
            workers=run_workers,
            partitions=partitions,
        )
        if decision is not None:
            self._observe_auto(decision, run)
        self._attach_resources(run)
        return run

    def _disk_join(
        self,
        rd: SpatialDataset,
        sd: SpatialDataset,
        *,
        method: str,
        grid_order: int,
        tiles_per_dim: int,
        include_disjoint: bool,
        workdir: str | Path | None,
    ) -> JoinRun:
        from repro.join.diskjoin import DiskPartitionedJoin

        # The unpadded union extent: DiskPartitionedJoin pads it itself,
        # so tiles share exactly the grid join_grid() would produce.
        extent = Box.union_all([rd.extent, sd.extent])

        def _run(directory: str | Path) -> JoinRun:
            disk = DiskPartitionedJoin(
                directory,
                tiles_per_dim=tiles_per_dim,
                grid_order=grid_order,
                method=method,
            )
            disk.partition("r", rd.geometries, extent)
            disk.partition("s", sd.geometries, extent)
            return disk.run(include_disjoint=include_disjoint)

        if workdir is not None:
            run = _run(workdir)
        else:
            with tempfile.TemporaryDirectory(prefix="repro-diskjoin-") as tmp:
                run = _run(tmp)
            run.meta["workdir"] = None  # partitions were temporary
        run.meta.update(r=rd.name, s=sd.name, r_count=len(rd), s_count=len(sd))
        return run

    def explain(self, r, s, i: int, j: int, *, grid_order: int = 11):
        """The P+C filter narration for one pair of the two datasets
        (see :func:`repro.join.explain.explain_pair`). Uses the cached
        object sets, so explaining pairs of an indexed dataset does not
        re-rasterise."""
        from repro.join.explain import explain_pair

        rd = self.dataset(r)
        sd = self.dataset(s)
        if not (0 <= i < len(rd)):
            raise IndexError(f"r index {i} out of range for {len(rd)} geometries")
        if not (0 <= j < len(sd)):
            raise IndexError(f"s index {j} out of range for {len(sd)} geometries")
        grid = self.join_grid(rd, sd, grid_order)
        r_objects = self.objects(rd, grid)
        s_objects = self.objects(sd, grid)
        return explain_pair(r_objects[i], s_objects[j])


# ----------------------------------------------------------------------
# the process-default engine
# ----------------------------------------------------------------------
_DEFAULT_ENGINE: Engine | None = None


def default_engine() -> Engine:
    """The process-wide engine the CLI and convenience APIs share.

    Unlike a bare ``Engine()``, the default engine discovers the
    machine's persisted calibration profile (``python -m repro
    calibrate``), so CLI ``--mode auto`` joins are cost-model-driven
    wherever a profile exists — and fall back to the workers rule
    where none does.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine(calibration="auto")
        atexit.register(_close_default_engine)
    return _DEFAULT_ENGINE


def _close_default_engine() -> None:
    """The default engine's atexit hook: deterministic teardown of the
    warm caches at interpreter exit (idempotent; a replaced or reset
    default is simply absent)."""
    if _DEFAULT_ENGINE is not None:
        _DEFAULT_ENGINE.close()


def set_default_engine(engine: Engine | None) -> Engine | None:
    """Replace the process-default engine; returns the previous one.
    Pass ``None`` to reset (a fresh engine is created on next use)."""
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous


__all__ = ["Engine", "MODES", "default_engine", "set_default_engine"]
