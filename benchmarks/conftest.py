"""Shared fixtures for the benchmark suite.

Benchmarks use reduced-scale scenarios so that ``pytest benchmarks/
--benchmark-only`` completes in minutes; the experiment harness
(``python -m repro.experiments``) is the tool for full-scale runs.
"""

import pytest

from repro.datasets import load_scenario
from repro.obs.bench import append_entry

BENCH_SCALE = 0.4
BENCH_GRID_ORDER = 10


def record_entry(path, entry: dict) -> dict:
    """Append one entry to a ``BENCH_*.json`` trajectory file.

    The single write path for every benchmark writer: delegates to
    :func:`repro.obs.bench.append_entry`, which stamps the common
    envelope (schema version, UTC timestamp, git revision, machine
    fingerprint) so trajectories stay comparable across machines and
    time. Returns the enveloped entry.
    """
    return append_entry(path, entry)


@pytest.fixture(scope="session")
def ole_ope():
    """The OLE-OPE (lakes vs parks) scenario at benchmark scale."""
    return load_scenario("OLE-OPE", scale=BENCH_SCALE, grid_order=BENCH_GRID_ORDER)


@pytest.fixture(scope="session")
def obe_ope():
    """The OBE-OPE (buildings vs parks) scenario at benchmark scale."""
    return load_scenario("OBE-OPE", scale=BENCH_SCALE, grid_order=BENCH_GRID_ORDER)


@pytest.fixture(scope="session")
def tc_tz():
    """The TC-TZ (counties vs zip codes) scenario at benchmark scale."""
    return load_scenario("TC-TZ", scale=BENCH_SCALE, grid_order=BENCH_GRID_ORDER)
