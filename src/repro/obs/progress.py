"""Per-worker progress heartbeats for long joins.

A multi-minute join over millions of candidate pairs is silent today:
nothing distinguishes a skewed straggler partition from a hang. When
enabled (CLI ``--progress``), every runner — the serial loop and each
forked worker — emits a throttled heartbeat line to stderr::

    [P+C part=3] 12000/51200 pairs, 860 refined

The module flag travels into workers by fork inheritance, so enabling
progress in the parent is enough. Emission is wall-clock throttled
(default: one line per 0.5 s per reporter), and the disabled path costs
one ``None`` check per loop iteration in the callers.

stdlib only; no imports from ``repro`` (same rule as the sibling
modules, so every layer can use it without cycles).
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

__all__ = [
    "ProgressReporter",
    "progress_enabled",
    "progress_reporter",
    "set_progress",
]

_ENABLED = False
#: Minimum seconds between heartbeat lines of one reporter.
HEARTBEAT_SECONDS = 0.5


def set_progress(enabled: bool) -> None:
    """Turn heartbeat emission on or off (module-wide, fork-inherited)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def progress_enabled() -> bool:
    return _ENABLED


class ProgressReporter:
    """Throttled heartbeat printer for one partition/stage."""

    __slots__ = ("label", "total", "stream", "interval", "_last")

    def __init__(
        self,
        label: str,
        total: int,
        stream: TextIO | None = None,
        interval: float = HEARTBEAT_SECONDS,
    ) -> None:
        self.label = label
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._last = time.perf_counter()

    def tick(self, done: int, detail: str = "") -> None:
        """Maybe emit a heartbeat; cheap when called inside the window."""
        now = time.perf_counter()
        if now - self._last < self.interval:
            return
        self._last = now
        suffix = f", {detail}" if detail else ""
        print(
            f"[{self.label}] {done}/{self.total} pairs{suffix}",
            file=self.stream,
            flush=True,
        )

    def finish(self, detail: str = "") -> None:
        """Unconditional final line so every partition reports once."""
        suffix = f", {detail}" if detail else ""
        print(
            f"[{self.label}] done {self.total}/{self.total} pairs{suffix}",
            file=self.stream,
            flush=True,
        )

    def summary(self, line: str) -> None:
        """Unconditional labelled one-liner (e.g. the latency quantiles)."""
        print(f"[{self.label}] {line}", file=self.stream, flush=True)


def progress_reporter(label: str, total: int) -> ProgressReporter | None:
    """A reporter when progress is enabled, else ``None``.

    Callers hold the result and guard their loop with a single
    ``is not None`` test — the entire disabled-path cost.
    """
    if not _ENABLED:
        return None
    return ProgressReporter(label, total)
