"""The warm-cache join engine: one front door for every execution mode.

Before PR 4 each way of running a join had its own entry point and its
own return shape — ``TopologyJoin`` for in-memory serial/parallel runs,
``run_find_relation_batch`` for the vectorised path, and
``DiskPartitionedJoin`` for out-of-core PBSM. The :class:`Engine`
subsumes them: :meth:`Engine.join` accepts datasets in any form (index
directories, ``.wkt``/``.geojson`` files, polygon lists, or
:class:`~repro.store.dataset.SpatialDataset` objects), picks the
execution mode from one argument, and always returns the same
:class:`~repro.join.run.JoinRun` envelope.

The engine memoises the expensive intermediates in bounded LRU caches:

- **datasets** — parsed geometry collections, keyed by resolved path +
  a content fingerprint, so a mutated source file is a cache *miss*
  (never a stale hit);
- **object sets** — ``SpatialObject`` lists per (dataset content hash,
  grid), where APRIL approximations live; backed by the dataset's
  persistent payloads, so a warm join — even in a brand-new process —
  performs zero rasterisation;
- **candidate pairs** — the plane-sweep MBR join per dataset pair.

Cache traffic is observable through the metrics registry
(``repro_store_cache_total{cache,outcome}``,
``repro_store_build_seconds{what}``), and the warm-path proof counter
``repro_april_built_total`` stays at zero for a fully warm run.
"""

from __future__ import annotations

import tempfile
import time
from collections import OrderedDict
from pathlib import Path
from typing import Sequence

from repro.geometry.box import Box
from repro.join.mbr_join import plane_sweep_mbr_join
from repro.join.objects import SpatialObject
from repro.join.pipeline import PIPELINES
from repro.join.run import JoinResult, JoinRun
from repro.obs.trace import trace
from repro.raster.grid import RasterGrid, pad_dataspace
from repro.store.dataset import (
    MANIFEST_NAME,
    SpatialDataset,
    _observe_cache,
    content_hash,
    file_sha256,
)
from repro.topology.de9im import TopologicalRelation

#: Execution modes :meth:`Engine.join` understands.
MODES = ("auto", "serial", "batch", "parallel", "disk")


class _LRU:
    """A bounded insertion/access-ordered cache with obs counters."""

    def __init__(self, capacity: int, name: str) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._data: OrderedDict = OrderedDict()

    def get(self, key):
        """The cached value or None; records a hit/miss counter either way."""
        try:
            value = self._data[key]
        except KeyError:
            _observe_cache(self.name, "miss")
            return None
        self._data.move_to_end(key)
        _observe_cache(self.name, "hit")
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            _observe_cache(self.name, "evict")

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()


def _grid_identity(grid: RasterGrid) -> tuple:
    ds = grid.dataspace
    return (grid.order, ds.xmin, ds.ymin, ds.xmax, ds.ymax)


class Engine:
    """Resolves datasets, memoises their derived state, runs joins.

    Parameters bound the LRU caches; an engine with the defaults keeps
    a handful of datasets fully warm. One engine instance is not
    thread-safe; share it across sequential queries only.
    """

    def __init__(
        self,
        *,
        max_datasets: int = 8,
        max_object_sets: int = 16,
        max_pair_sets: int = 32,
    ) -> None:
        self._datasets = _LRU(max_datasets, "dataset")
        self._objects = _LRU(max_object_sets, "objects")
        self._pairs = _LRU(max_pair_sets, "pairs")

    # ------------------------------------------------------------------
    # dataset resolution
    # ------------------------------------------------------------------
    def dataset(
        self,
        source,
        *,
        on_error: str = "raise",
        strict: bool = True,
        quarantine=None,
    ) -> SpatialDataset:
        """Resolve ``source`` into a (possibly cached) dataset.

        Accepts a :class:`SpatialDataset` (returned as-is), a path to an
        index directory (must hold a ``manifest.json``), a path to a
        ``.wkt``/``.geojson`` file, or a sequence of polygons. Cache
        keys embed a content fingerprint — the manifest bytes for an
        index, the file bytes for a source file, the geometry content
        hash for in-memory inputs — so mutating the source invalidates
        the entry instead of serving stale geometry.

        ``on_error="rebuild"`` repairs an unusable index directory in
        place (see :meth:`SpatialDataset.open`); ``strict=False`` loads
        geometry files leniently, skipping malformed rows into
        ``quarantine`` (the lenient flag is part of the cache key, and a
        cache hit leaves ``quarantine`` untouched — rows are only
        quarantined when the file is actually parsed).
        """
        if isinstance(source, SpatialDataset):
            return source
        if isinstance(source, (str, Path)):
            path = Path(source)
            if path.is_dir():
                manifest = path / MANIFEST_NAME
                fingerprint = file_sha256(manifest) if manifest.exists() else "absent"
                key = ("index", str(path.resolve()), fingerprint)
                cached = self._datasets.get(key)
                if cached is None:
                    cached = SpatialDataset.open(path, on_error=on_error)
                    self._datasets.put(key, cached)
                return cached
            key = ("file", str(path.resolve()), file_sha256(path), strict)
            cached = self._datasets.get(key)
            if cached is None:
                from repro.store.dataset import load_geometry_file

                cached = SpatialDataset(
                    load_geometry_file(path, strict=strict, quarantine=quarantine),
                    name=path.stem,
                    source=path,
                    source_sha256=key[2],
                )
                self._datasets.put(key, cached)
            return cached
        polygons = list(source)
        key = ("mem", content_hash(polygons))
        cached = self._datasets.get(key)
        if cached is None:
            cached = SpatialDataset.from_polygons(polygons)
            self._datasets.put(key, cached)
        return cached

    # ------------------------------------------------------------------
    # derived state
    # ------------------------------------------------------------------
    def join_grid(
        self, r: SpatialDataset, s: SpatialDataset, grid_order: int
    ) -> RasterGrid:
        """The shared grid a join between ``r`` and ``s`` runs on: the
        padded union of both extents (identical to the historical
        ``TopologyJoin.grid``)."""
        return RasterGrid(
            pad_dataspace(Box.union_all([r.extent, s.extent])), order=grid_order
        )

    def objects(
        self,
        dataset: SpatialDataset,
        grid: RasterGrid,
        *,
        with_april: bool = True,
        workers: int | None = 1,
    ) -> list[SpatialObject]:
        """The dataset's ``SpatialObject`` list for ``grid``.

        Object lists are cached per (content hash, grid); APRIL
        approximations are attached lazily (``with_april``) and come
        from :meth:`SpatialDataset.approximations`, i.e. from the
        persistent payload when one exists — the warm path that skips
        rasterisation entirely.
        """
        key = (dataset.content_hash, _grid_identity(grid))
        objects = self._objects.get(key)
        if objects is None:
            objects = [
                SpatialObject(oid=oid, polygon=polygon, box=box)
                for oid, (polygon, box) in enumerate(
                    zip(dataset.geometries, dataset.boxes)
                )
            ]
            self._objects.put(key, objects)
        if with_april and objects and objects[0].april is None:
            aprils = dataset.approximations(grid, workers=workers)
            for obj, approx in zip(objects, aprils):
                obj.april = approx
        return objects

    def pairs(self, r: SpatialDataset, s: SpatialDataset) -> list[tuple[int, int]]:
        """The MBR filter step for the dataset pair, cached and sorted."""
        key = (r.content_hash, s.content_hash)
        pairs = self._pairs.get(key)
        if pairs is None:
            with trace("mbr_filter_step") as span:
                pairs = plane_sweep_mbr_join(r.boxes, s.boxes)
                pairs.sort()
                if span is not None:
                    span.attrs["pairs"] = len(pairs)
            self._pairs.put(key, pairs)
        return pairs

    def clear(self) -> None:
        """Drop every cached dataset, object set and pair set."""
        self._datasets.clear()
        self._objects.clear()
        self._pairs.clear()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def join(
        self,
        r,
        s,
        *,
        method: str = "P+C",
        grid_order: int = 11,
        mode: str = "auto",
        predicate: TopologicalRelation | None = None,
        workers: int | None = 1,
        include_disjoint: bool = False,
        chunk_size: int | None = None,
        partition: str = "chunks",
        tiles_per_dim: int | None = None,
        workdir: str | Path | None = None,
        partition_timeout: float | None = None,
        max_retries: int | None = None,
        on_index_error: str = "raise",
        strict: bool = True,
    ) -> JoinRun:
        """Join ``r`` with ``s`` and return one :class:`JoinRun`,
        whatever the execution mode.

        ``mode="auto"`` runs serial for ``workers=1`` and parallel
        otherwise; ``"batch"`` uses the vectorised P+C runner;
        ``"disk"`` runs the out-of-core PBSM join (``workdir`` holds
        the partition files; a temporary directory when omitted).
        ``predicate`` switches from find-relation to a relate_p join.

        Fault-tolerance knobs: ``partition_timeout``/``max_retries``
        bound the supervised parallel fan-out (see
        :mod:`repro.resilience.supervisor`); ``on_index_error="rebuild"``
        repairs unusable index directories instead of raising;
        ``strict=False`` quarantines malformed source-file rows instead
        of aborting (the skipped rows land in
        ``run.meta["quarantine"]``).
        """
        if method not in PIPELINES:
            raise KeyError(f"unknown method {method!r}; available: {list(PIPELINES)}")
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; available: {list(MODES)}")
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        from repro.resilience.quarantine import QuarantineReport

        r_quarantine = QuarantineReport()
        s_quarantine = QuarantineReport()
        rd = self.dataset(
            r, on_error=on_index_error, strict=strict, quarantine=r_quarantine
        )
        sd = self.dataset(
            s, on_error=on_index_error, strict=strict, quarantine=s_quarantine
        )
        if mode == "disk":
            if predicate is not None:
                raise ValueError("disk mode does not support relate_p predicates")
            return self._disk_join(
                rd,
                sd,
                method=method,
                grid_order=grid_order,
                tiles_per_dim=tiles_per_dim or 4,
                include_disjoint=include_disjoint,
                workdir=workdir,
            )
        with trace("topology_join", method=method, mode=mode):
            grid = self.join_grid(rd, sd, grid_order)
            needs_april = predicate is not None or PIPELINES[method].uses_april
            r_objects = self.objects(rd, grid, with_april=needs_april, workers=workers)
            s_objects = self.objects(sd, grid, with_april=needs_april, workers=workers)
            pairs = self.pairs(rd, sd)
            run = self.execute(
                method,
                r_objects,
                s_objects,
                pairs,
                mode=mode,
                predicate=predicate,
                workers=workers,
                include_disjoint=include_disjoint,
                chunk_size=chunk_size,
                partition=partition,
                tiles_per_dim=tiles_per_dim,
                partition_timeout=partition_timeout,
                max_retries=max_retries,
            )
        run.meta.update(
            r=rd.name, s=sd.name, r_count=len(rd), s_count=len(sd), grid_order=grid_order
        )
        quarantined = [q.to_dict() for q in (r_quarantine, s_quarantine) if q]
        if quarantined:
            run.meta["quarantine"] = quarantined
        return run

    def execute(
        self,
        method: str,
        r_objects: Sequence[SpatialObject],
        s_objects: Sequence[SpatialObject],
        pairs: Sequence[tuple[int, int]],
        *,
        mode: str = "auto",
        predicate: TopologicalRelation | None = None,
        workers: int | None = 1,
        include_disjoint: bool = False,
        chunk_size: int | None = None,
        partition: str = "chunks",
        tiles_per_dim: int | None = None,
        partition_timeout: float | None = None,
        max_retries: int | None = None,
    ) -> JoinRun:
        """Run one verification pass over prepared objects and pairs.

        The lower-level sibling of :meth:`join` for callers that manage
        their own objects (``TopologyJoin`` delegates here).
        """
        from repro.parallel import run_find_relation_parallel, run_relate_parallel

        if mode == "auto":
            mode = "parallel" if workers is None or workers > 1 else "serial"
        effective = 1 if mode == "serial" else workers

        if predicate is not None:
            if mode not in ("serial", "parallel"):
                raise ValueError(f"relate_p joins support serial/parallel, not {mode!r}")
            relate_run = run_relate_parallel(
                predicate,
                r_objects,
                s_objects,
                pairs,
                workers=effective,
                chunk_size=chunk_size,
                partition=partition,
                tiles_per_dim=tiles_per_dim,
                partition_timeout=partition_timeout,
                max_retries=max_retries,
            )
            return JoinRun(
                results=[
                    JoinResult(i, j, predicate, None) for i, j in relate_run.matches
                ],
                stats=relate_run.stats,
                method=relate_run.stats.method,
                mode=mode,
                kind="relate",
                predicate=predicate,
                wall_seconds=relate_run.wall_seconds,
                workers=relate_run.workers,
                partitions=relate_run.partitions,
            )

        if mode == "batch":
            from repro.join.batch import run_find_relation_batch_outcomes

            if method != "P+C":
                raise ValueError(
                    f"batch mode implements the P+C pipeline only, not {method!r}"
                )
            start = time.perf_counter()
            outcomes, stats = run_find_relation_batch_outcomes(
                r_objects, s_objects, pairs
            )
            wall = time.perf_counter() - start
            run_workers, partitions = 1, 1
        else:
            find_run = run_find_relation_parallel(
                method,
                r_objects,
                s_objects,
                pairs,
                workers=effective,
                chunk_size=chunk_size,
                partition=partition,
                tiles_per_dim=tiles_per_dim,
                partition_timeout=partition_timeout,
                max_retries=max_retries,
            )
            outcomes, stats = find_run.results, find_run.stats
            wall = find_run.wall_seconds
            run_workers, partitions = find_run.workers, find_run.partitions

        results = [
            JoinResult(i, j, relation, filtered)
            for i, j, relation, filtered in outcomes
            if include_disjoint or relation is not TopologicalRelation.DISJOINT
        ]
        return JoinRun(
            results=results,
            stats=stats,
            method=method,
            mode=mode,
            wall_seconds=wall,
            workers=run_workers,
            partitions=partitions,
        )

    def _disk_join(
        self,
        rd: SpatialDataset,
        sd: SpatialDataset,
        *,
        method: str,
        grid_order: int,
        tiles_per_dim: int,
        include_disjoint: bool,
        workdir: str | Path | None,
    ) -> JoinRun:
        from repro.join.diskjoin import DiskPartitionedJoin

        # The unpadded union extent: DiskPartitionedJoin pads it itself,
        # so tiles share exactly the grid join_grid() would produce.
        extent = Box.union_all([rd.extent, sd.extent])

        def _run(directory: str | Path) -> JoinRun:
            disk = DiskPartitionedJoin(
                directory,
                tiles_per_dim=tiles_per_dim,
                grid_order=grid_order,
                method=method,
            )
            disk.partition("r", rd.geometries, extent)
            disk.partition("s", sd.geometries, extent)
            return disk.run(include_disjoint=include_disjoint)

        if workdir is not None:
            run = _run(workdir)
        else:
            with tempfile.TemporaryDirectory(prefix="repro-diskjoin-") as tmp:
                run = _run(tmp)
            run.meta["workdir"] = None  # partitions were temporary
        run.meta.update(r=rd.name, s=sd.name, r_count=len(rd), s_count=len(sd))
        return run

    def explain(self, r, s, i: int, j: int, *, grid_order: int = 11):
        """The P+C filter narration for one pair of the two datasets
        (see :func:`repro.join.explain.explain_pair`). Uses the cached
        object sets, so explaining pairs of an indexed dataset does not
        re-rasterise."""
        from repro.join.explain import explain_pair

        rd = self.dataset(r)
        sd = self.dataset(s)
        if not (0 <= i < len(rd)):
            raise IndexError(f"r index {i} out of range for {len(rd)} geometries")
        if not (0 <= j < len(sd)):
            raise IndexError(f"s index {j} out of range for {len(sd)} geometries")
        grid = self.join_grid(rd, sd, grid_order)
        r_objects = self.objects(rd, grid)
        s_objects = self.objects(sd, grid)
        return explain_pair(r_objects[i], s_objects[j])


# ----------------------------------------------------------------------
# the process-default engine
# ----------------------------------------------------------------------
_DEFAULT_ENGINE: Engine | None = None


def default_engine() -> Engine:
    """The process-wide engine the CLI and convenience APIs share."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine()
    return _DEFAULT_ENGINE


def set_default_engine(engine: Engine | None) -> Engine | None:
    """Replace the process-default engine; returns the previous one.
    Pass ``None`` to reset (a fresh engine is created on next use)."""
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous


__all__ = ["Engine", "MODES", "default_engine", "set_default_engine"]
