"""Grid histograms and topology-query selectivity estimation.

A :class:`SpatialHistogram` summarises a dataset on a coarse uniform
grid of *MBR centers* plus the average MBR extent. The classic
Minkowski-sum estimators then give expected cardinalities without
touching the data:

- an average-sized MBR intersects a window ``W`` iff its center falls
  in ``W`` expanded by half the average extent;
- it lies inside ``W`` iff its center falls in ``W`` shrunk by half the
  average extent;
- two average-sized MBRs with centers uniform in the same bucket
  intersect with probability ``min(1, (wr+ws)/bw) * min(1, (hr+hs)/bh)``.

These are the numbers a query optimiser needs — the MBR-join output
size bounds every topology pipeline's work. Estimates are tested to be
(a) zero on empty regions, (b) capped by the population, and (c) within
a small factor of the truth on uniform and scenario workloads; the
point is relative cost, not exact counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry.box import Box
from repro.raster.grid import pad_dataspace

DEFAULT_BUCKETS = 32


@dataclass(frozen=True)
class SpatialHistogram:
    """A uniform-grid center histogram of one dataset's MBRs."""

    extent: Box
    buckets_per_dim: int
    #: (buckets, buckets) float array of center counts, [iy, ix].
    counts: np.ndarray
    avg_width: float
    avg_height: float
    num_objects: int

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def build(
        boxes: Sequence[Box],
        buckets_per_dim: int = DEFAULT_BUCKETS,
        extent: Box | None = None,
    ) -> "SpatialHistogram":
        """Summarise ``boxes``: one count per MBR center, avg extents."""
        if not boxes:
            raise ValueError("cannot build a histogram over zero boxes")
        if buckets_per_dim < 1:
            raise ValueError("need at least one bucket per dimension")
        if extent is None:
            extent = pad_dataspace(Box.union_all(boxes))
        counts = np.zeros((buckets_per_dim, buckets_per_dim))
        bw = extent.width / buckets_per_dim or 1.0
        bh = extent.height / buckets_per_dim or 1.0

        total_w = total_h = 0.0
        for box in boxes:
            total_w += box.width
            total_h += box.height
            cx, cy = box.center
            ix = _clamp(int((cx - extent.xmin) / bw), buckets_per_dim)
            iy = _clamp(int((cy - extent.ymin) / bh), buckets_per_dim)
            counts[iy, ix] += 1.0
        n = len(boxes)
        return SpatialHistogram(
            extent=extent,
            buckets_per_dim=buckets_per_dim,
            counts=counts,
            avg_width=total_w / n,
            avg_height=total_h / n,
            num_objects=n,
        )

    @property
    def bucket_width(self) -> float:
        return self.extent.width / self.buckets_per_dim

    @property
    def bucket_height(self) -> float:
        return self.extent.height / self.buckets_per_dim

    # ------------------------------------------------------------------
    # estimators
    # ------------------------------------------------------------------
    def estimate_window_candidates(self, window: Box) -> float:
        """Expected number of MBRs intersecting ``window``."""
        expanded = Box(
            window.xmin - self.avg_width / 2.0,
            window.ymin - self.avg_height / 2.0,
            window.xmax + self.avg_width / 2.0,
            window.ymax + self.avg_height / 2.0,
        )
        return min(self._center_integral(expanded), float(self.num_objects))

    def estimate_window_containment(self, window: Box) -> float:
        """Expected number of MBRs entirely inside ``window``."""
        xmin = window.xmin + self.avg_width / 2.0
        ymin = window.ymin + self.avg_height / 2.0
        xmax = window.xmax - self.avg_width / 2.0
        ymax = window.ymax - self.avg_height / 2.0
        if xmin >= xmax or ymin >= ymax:
            return 0.0
        return min(self._center_integral(Box(xmin, ymin, xmax, ymax)), float(self.num_objects))

    def _center_integral(self, region: Box) -> float:
        """Expected number of centers in ``region`` (fractional-bucket)."""
        clipped = region.intersection(self.extent)
        if clipped is None:
            return 0.0
        bw = self.bucket_width
        bh = self.bucket_height
        ix0 = _clamp(int((clipped.xmin - self.extent.xmin) / bw), self.buckets_per_dim)
        ix1 = _clamp(
            int(math.ceil((clipped.xmax - self.extent.xmin) / bw)) - 1, self.buckets_per_dim
        )
        iy0 = _clamp(int((clipped.ymin - self.extent.ymin) / bh), self.buckets_per_dim)
        iy1 = _clamp(
            int(math.ceil((clipped.ymax - self.extent.ymin) / bh)) - 1, self.buckets_per_dim
        )
        ix1 = max(ix1, ix0)
        iy1 = max(iy1, iy0)

        total = 0.0
        for iy in range(iy0, iy1 + 1):
            y0 = self.extent.ymin + iy * bh
            fy = _overlap_1d(clipped.ymin, clipped.ymax, y0, y0 + bh) / bh
            for ix in range(ix0, ix1 + 1):
                x0 = self.extent.xmin + ix * bw
                fx = _overlap_1d(clipped.xmin, clipped.xmax, x0, x0 + bw) / bw
                total += self.counts[iy, ix] * fx * fy
        return total


def estimate_join_candidates(r_hist: SpatialHistogram, s_hist: SpatialHistogram) -> float:
    """Expected size of the MBR-intersection join of two datasets.

    Bucket-local model: centers uniform within their bucket; a pair in
    the same bucket intersects with probability
    ``min(1, (wr+ws)/bw) * min(1, (hr+hs)/bh)``. Cross-bucket pairs are
    approximated by smoothing each side's counts over the neighbourhood
    an average MBR reaches.
    """
    if r_hist.extent != s_hist.extent or r_hist.buckets_per_dim != s_hist.buckets_per_dim:
        raise ValueError("histograms must share extent and resolution")
    bw = r_hist.bucket_width
    bh = r_hist.bucket_height
    p_w = min(1.0, (r_hist.avg_width + s_hist.avg_width) / bw if bw else 1.0)
    p_h = min(1.0, (r_hist.avg_height + s_hist.avg_height) / bh if bh else 1.0)
    pair_density = (r_hist.counts * s_hist.counts).sum()
    return float(pair_density * p_w * p_h)


def _overlap_1d(a0: float, a1: float, b0: float, b1: float) -> float:
    return max(0.0, min(a1, b1) - max(a0, b0))


def _clamp(value: int, buckets: int) -> int:
    return min(buckets - 1, max(0, value))


__all__ = ["SpatialHistogram", "estimate_join_candidates"]
