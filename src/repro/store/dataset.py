"""Persistent spatial datasets: build once, query many times.

The paper's preprocessing is "conducted once per object", yet until
PR 4 the repo rebuilt APRIL approximations on every join construction
unless the caller hand-managed ``.npz`` paths. A :class:`SpatialDataset`
turns preprocessing into a build-once artifact: it bundles the
geometries, their MBRs, a packed STR R-tree, and APRIL P/C interval
payloads, and can persist the whole bundle into a versioned on-disk
index directory::

    index_dir/
      manifest.json      format version, counts, extent, content hash,
                         source fingerprint, payload catalog
      geometries.wkt     canonical geometry dump (one WKT per line,
                         precision 17 — float64 round-trip exact)
      april/
        g<order>_<ds>.npz  one payload per (grid order, dataspace),
                           written via raster.storage

A dataset may hold payloads for *several* grids: a join between two
datasets runs on the padded union of their extents, so the first
(cold) join against a new partner rasterises on the union grid and
persists that payload into the index — every later join against the
same partner loads it and performs zero rasterisation.

Identity is content-addressed: ``content_hash`` is the SHA-256 of the
canonical WKT dump (stable across formatting and storage), and
``source_sha256`` fingerprints the raw source file so a mutated source
invalidates the index (the engine then rebuilds it).
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import time
from functools import cached_property
from pathlib import Path
from typing import Sequence

from repro.geometry.box import Box
from repro.geometry.polygon import Polygon
from repro.geometry.wkt import dumps_wkt, loads_wkt_geometry
from repro.join.rtree import RTree
from repro.obs.metrics import get_registry, metrics_enabled
from repro.obs.trace import trace
from repro.raster.grid import RasterGrid, pad_dataspace
from repro.raster.storage import StoreError, load_approximations, save_approximations

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"
GEOMETRY_NAME = "geometries.wkt"
APRIL_DIR = "april"
#: repr-exact float64 round trip, so the canonical dump (and therefore
#: the content hash) is stable across save/load cycles.
_WKT_PRECISION = 17


# ----------------------------------------------------------------------
# hashing and keys
# ----------------------------------------------------------------------
def content_hash(geometries: Sequence) -> str:
    """SHA-256 of the canonical WKT dump of ``geometries``."""
    h = hashlib.sha256()
    for g in geometries:
        h.update(dumps_wkt(g, precision=_WKT_PRECISION).encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def file_sha256(path: str | Path) -> str:
    """SHA-256 of a file's raw bytes (source staleness fingerprint)."""
    h = hashlib.sha256()
    with Path(path).open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def grid_key(grid: RasterGrid) -> str:
    """Filename-safe identity of a grid: order + dataspace digest."""
    ds = grid.dataspace
    digest = hashlib.sha256(
        struct.pack("<4d", ds.xmin, ds.ymin, ds.xmax, ds.ymax)
    ).hexdigest()[:12]
    return f"g{grid.order}_{digest}"


def _observe_cache(cache: str, outcome: str) -> None:
    if metrics_enabled():
        get_registry().inc("repro_store_cache_total", cache=cache, outcome=outcome)


def _observe_build(what: str, seconds: float) -> None:
    if metrics_enabled():
        get_registry().observe("repro_store_build_seconds", seconds, what=what)


# ----------------------------------------------------------------------
# source loading
# ----------------------------------------------------------------------
def load_geometry_file(path: str | Path) -> list[Polygon]:
    """Load the polygonal geometries of a ``.wkt`` or ``.geojson`` file."""
    from repro.datasets.geojson import load_geojson
    from repro.datasets.io import load_wkt_file
    from repro.geometry.multipolygon import MultiPolygon

    p = Path(path)
    if p.suffix.lower() in (".geojson", ".json"):
        geometries = [f.geometry for f in load_geojson(p)]
    else:
        geometries = load_wkt_file(p)
    areal = [g for g in geometries if isinstance(g, (Polygon, MultiPolygon))]
    if not areal:
        raise ValueError(f"{path}: no polygonal geometries found")
    return areal


# ----------------------------------------------------------------------
# the dataset
# ----------------------------------------------------------------------
class SpatialDataset:
    """A polygon collection plus everything a join needs precomputed.

    In-memory datasets (``path is None``) cache their derived bundles
    (boxes, extent, R-tree, content hash) for the process lifetime;
    persistent datasets additionally load/store APRIL payloads in their
    index directory.
    """

    def __init__(
        self,
        geometries: Sequence[Polygon],
        *,
        name: str = "dataset",
        path: str | Path | None = None,
        source: str | Path | None = None,
        source_sha256: str | None = None,
    ) -> None:
        geometries = list(geometries)
        if not geometries:
            raise ValueError("a dataset must contain at least one geometry")
        self.geometries = geometries
        self.name = name
        self.path = Path(path) if path is not None else None
        self.source = Path(source) if source is not None else None
        self.source_sha256 = source_sha256

    def __len__(self) -> int:
        return len(self.geometries)

    def __repr__(self) -> str:
        where = str(self.path) if self.path else "memory"
        return f"SpatialDataset({self.name!r}, {len(self)} geometries, {where})"

    # ------------------------------------------------------------------
    # identity and derived bundles
    # ------------------------------------------------------------------
    @cached_property
    def content_hash(self) -> str:
        return content_hash(self.geometries)

    @cached_property
    def boxes(self) -> list[Box]:
        return [g.bbox for g in self.geometries]

    @cached_property
    def extent(self) -> Box:
        return Box.union_all(self.boxes)

    @cached_property
    def rtree(self) -> RTree:
        """Packed STR R-tree over the MBRs (selection access path)."""
        return RTree(self.boxes)

    def grid(self, order: int) -> RasterGrid:
        """The dataset's own grid: its padded extent at ``order``."""
        return RasterGrid(pad_dataspace(self.extent), order=order)

    # ------------------------------------------------------------------
    # approximations
    # ------------------------------------------------------------------
    def approximation_path(self, grid: RasterGrid) -> Path | None:
        if self.path is None:
            return None
        return self.path / APRIL_DIR / (grid_key(grid) + ".npz")

    def approximations(self, grid: RasterGrid, workers: int | None = 1) -> list:
        """APRIL lists for every geometry on ``grid`` — loaded from the
        index when a valid payload exists, built (and, for persistent
        datasets, written back) otherwise."""
        payload = self.approximation_path(grid)
        if payload is not None and payload.exists():
            try:
                aprils = load_approximations(payload, expected_grid=grid)
                if len(aprils) == len(self.geometries):
                    _observe_cache("april_payload", "hit")
                    return aprils
            except StoreError:
                pass  # stale or foreign payload: rebuild below
        if payload is not None:
            _observe_cache("april_payload", "miss")
        aprils = self._build_approximations(grid, workers)
        if payload is not None:
            payload.parent.mkdir(parents=True, exist_ok=True)
            save_approximations(payload, aprils)
            self._register_payload(grid, payload)
        return aprils

    def _build_approximations(self, grid: RasterGrid, workers: int | None) -> list:
        from repro.parallel import build_april_parallel

        t0 = time.perf_counter()
        with trace("store_build_april", count=len(self), grid_order=grid.order):
            aprils = build_april_parallel(self.geometries, grid, workers=workers)
        _observe_build("april", time.perf_counter() - t0)
        return aprils

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _manifest(self) -> dict:
        ext = self.extent
        return {
            "format_version": MANIFEST_VERSION,
            "name": self.name,
            "count": len(self),
            "content_hash": self.content_hash,
            "source": str(self.source) if self.source else None,
            "source_sha256": self.source_sha256,
            "extent": [ext.xmin, ext.ymin, ext.xmax, ext.ymax],
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "approximations": [],
        }

    def _write_manifest(self, manifest: dict) -> None:
        assert self.path is not None
        tmp = self.path / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
        os.replace(tmp, self.path / MANIFEST_NAME)

    def _register_payload(self, grid: RasterGrid, payload: Path) -> None:
        """Record a freshly written payload in the manifest catalog."""
        assert self.path is not None
        manifest_path = self.path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        ds = grid.dataspace
        entry = {
            "file": str(payload.relative_to(self.path)),
            "grid_order": grid.order,
            "dataspace": [ds.xmin, ds.ymin, ds.xmax, ds.ymax],
            "count": len(self),
        }
        entries = [
            e for e in manifest.get("approximations", []) if e["file"] != entry["file"]
        ]
        entries.append(entry)
        manifest["approximations"] = sorted(entries, key=lambda e: e["file"])
        self._write_manifest(manifest)

    def save(self, index_dir: str | Path) -> "SpatialDataset":
        """Persist geometries + manifest into ``index_dir``; returns the
        persistent dataset bound to that directory."""
        index_dir = Path(index_dir)
        index_dir.mkdir(parents=True, exist_ok=True)
        lines = [dumps_wkt(g, precision=_WKT_PRECISION) for g in self.geometries]
        (index_dir / GEOMETRY_NAME).write_text(
            "\n".join(lines) + "\n", encoding="utf-8"
        )
        persistent = SpatialDataset(
            self.geometries,
            name=self.name,
            path=index_dir,
            source=self.source,
            source_sha256=self.source_sha256,
        )
        persistent._write_manifest(persistent._manifest())
        return persistent

    @classmethod
    def open(
        cls, index_dir: str | Path, source: str | Path | None = None
    ) -> "SpatialDataset":
        """Load a dataset from its index directory.

        Raises :class:`StoreError` when the manifest is missing or has
        an unknown format version, when the stored geometries do not
        match the recorded content hash, or when ``source`` is given
        and its bytes no longer match the recorded fingerprint (the
        index is stale; rebuild it).
        """
        index_dir = Path(index_dir)
        manifest_path = index_dir / MANIFEST_NAME
        if not manifest_path.exists():
            raise StoreError(f"{index_dir}: not a dataset index (no {MANIFEST_NAME})")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise StoreError(f"{manifest_path}: corrupt manifest: {exc}") from exc
        version = manifest.get("format_version")
        if version != MANIFEST_VERSION:
            raise StoreError(
                f"{index_dir}: unsupported index format version {version!r} "
                f"(this build reads version {MANIFEST_VERSION})"
            )
        if source is not None:
            fingerprint = file_sha256(source)
            if fingerprint != manifest.get("source_sha256"):
                raise StoreError(
                    f"{index_dir}: stale index — {source} has changed since the "
                    "index was built (content-hash mismatch); rebuild the index"
                )
        geometries = []
        with (index_dir / GEOMETRY_NAME).open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    geometries.append(loads_wkt_geometry(line))
        if len(geometries) != manifest.get("count"):
            raise StoreError(
                f"{index_dir}: corrupt index — {len(geometries)} geometries stored, "
                f"manifest records {manifest.get('count')}"
            )
        dataset = cls(
            geometries,
            name=manifest.get("name", index_dir.name),
            path=index_dir,
            source=manifest.get("source"),
            source_sha256=manifest.get("source_sha256"),
        )
        if dataset.content_hash != manifest.get("content_hash"):
            raise StoreError(
                f"{index_dir}: corrupt index — stored geometries do not match "
                "the manifest's content hash"
            )
        return dataset

    @classmethod
    def from_polygons(
        cls, polygons: Sequence[Polygon], name: str = "memory"
    ) -> "SpatialDataset":
        """An in-memory (non-persistent) dataset over ``polygons``."""
        return cls(polygons, name=name)


# ----------------------------------------------------------------------
# module-level helpers (the CLI's build-index entry points)
# ----------------------------------------------------------------------
def build_dataset(
    source: str | Path,
    index_dir: str | Path,
    *,
    grid_order: int | None = None,
    workers: int | None = 1,
    name: str | None = None,
) -> SpatialDataset:
    """Build a persistent index for a ``.wkt``/``.geojson`` source file.

    With ``grid_order`` set, the APRIL payload for the dataset's *own*
    padded-extent grid is precomputed too (warm self-joins / selection);
    payloads for join-partner union grids are added lazily by the first
    cold join against each partner.
    """
    source = Path(source)
    t0 = time.perf_counter()
    geometries = load_geometry_file(source)
    dataset = SpatialDataset(
        geometries,
        name=name or source.stem,
        source=source,
        source_sha256=file_sha256(source),
    )
    persistent = dataset.save(index_dir)
    if grid_order is not None:
        persistent.approximations(persistent.grid(grid_order), workers=workers)
    _observe_build("dataset", time.perf_counter() - t0)
    return persistent


def open_dataset(
    index_dir: str | Path, source: str | Path | None = None
) -> SpatialDataset:
    """Open a persisted dataset index (see :meth:`SpatialDataset.open`)."""
    return SpatialDataset.open(index_dir, source=source)


__all__ = [
    "APRIL_DIR",
    "GEOMETRY_NAME",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "SpatialDataset",
    "build_dataset",
    "content_hash",
    "file_sha256",
    "grid_key",
    "load_geometry_file",
    "open_dataset",
]
