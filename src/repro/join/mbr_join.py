"""The filter step: MBR intersection joins.

Produces the stream of candidate pairs ``(i, j)`` whose MBRs intersect,
which the topology pipelines then process. Two algorithms:

- :func:`plane_sweep_mbr_join` — the forward-scan plane sweep of [39]:
  sort both inputs by ``xmin`` and scan, comparing each rectangle only
  against opposite-side rectangles whose x-intervals reach it.
- :func:`grid_partitioned_mbr_join` — a partition-based variant in the
  spirit of PBSM [27]: hash rectangles to uniform tiles, sweep within
  each tile, and deduplicate with the reference-point rule.

Both return identical pair sets (tested against the brute-force
product); the paper excludes this step's cost from all measurements.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.geometry.box import Box


def brute_force_mbr_join(r_boxes: Sequence[Box], s_boxes: Sequence[Box]) -> list[tuple[int, int]]:
    """Quadratic reference implementation (tests and tiny inputs)."""
    return [
        (i, j)
        for i, rb in enumerate(r_boxes)
        for j, sb in enumerate(s_boxes)
        if rb.intersects(sb)
    ]


def plane_sweep_mbr_join(
    r_boxes: Sequence[Box], s_boxes: Sequence[Box]
) -> list[tuple[int, int]]:
    """Forward-scan plane sweep MBR intersection join [39].

    ``O((|R| + |S|) log(|R| + |S|) + k)`` for typical spatial data.
    Returns pairs ``(i, j)`` with ``r_boxes[i]`` intersecting
    ``s_boxes[j]``, in no particular order.
    """
    events: list[tuple[float, int, int, Box]] = []
    for i, b in enumerate(r_boxes):
        events.append((b.xmin, 0, i, b))
    for j, b in enumerate(s_boxes):
        events.append((b.xmin, 1, j, b))
    events.sort(key=lambda e: (e[0], e[1]))

    result: list[tuple[int, int]] = []
    active_r: list[tuple[float, int, Box]] = []  # (xmax, index, box)
    active_s: list[tuple[float, int, Box]] = []
    for xmin, side, index, box in events:
        if side == 0:
            active_s[:] = [e for e in active_s if e[0] >= xmin]
            for _, j, sb in active_s:
                if box.ymin <= sb.ymax and sb.ymin <= box.ymax:
                    result.append((index, j))
            active_r.append((box.xmax, index, box))
        else:
            active_r[:] = [e for e in active_r if e[0] >= xmin]
            for _, i, rb in active_r:
                if box.ymin <= rb.ymax and rb.ymin <= box.ymax:
                    result.append((i, index))
            active_s.append((box.xmax, index, box))
    return result


def grid_partitioned_mbr_join(
    r_boxes: Sequence[Box],
    s_boxes: Sequence[Box],
    tiles_per_dim: int | None = None,
) -> list[tuple[int, int]]:
    """Partition-based MBR join with reference-point deduplication.

    The dataspace is split into ``tiles_per_dim^2`` uniform tiles
    (defaulting to ``~sqrt(N)`` per dimension); every rectangle is
    replicated to each tile it overlaps; tiles are swept independently;
    a pair is emitted only by the tile containing the top-left corner of
    the pair's intersection (the *reference point*), so no duplicates.
    """
    if not r_boxes or not s_boxes:
        return []
    universe = Box.union_all([Box.union_all(r_boxes), Box.union_all(s_boxes)])
    if tiles_per_dim is None:
        tiles_per_dim = max(1, int(math.sqrt(len(r_boxes) + len(s_boxes)) / 2))
    tiles_per_dim = max(1, tiles_per_dim)
    tile_w = universe.width / tiles_per_dim or 1.0
    tile_h = universe.height / tiles_per_dim or 1.0

    def tile_range(b: Box) -> tuple[int, int, int, int]:
        cx0 = min(tiles_per_dim - 1, max(0, int((b.xmin - universe.xmin) / tile_w)))
        cy0 = min(tiles_per_dim - 1, max(0, int((b.ymin - universe.ymin) / tile_h)))
        cx1 = min(tiles_per_dim - 1, max(0, int((b.xmax - universe.xmin) / tile_w)))
        cy1 = min(tiles_per_dim - 1, max(0, int((b.ymax - universe.ymin) / tile_h)))
        return cx0, cy0, cx1, cy1

    tiles_r: dict[tuple[int, int], list[tuple[int, Box]]] = {}
    tiles_s: dict[tuple[int, int], list[tuple[int, Box]]] = {}
    for store, boxes in ((tiles_r, r_boxes), (tiles_s, s_boxes)):
        for idx, b in enumerate(boxes):
            cx0, cy0, cx1, cy1 = tile_range(b)
            for tx in range(cx0, cx1 + 1):
                for ty in range(cy0, cy1 + 1):
                    store.setdefault((tx, ty), []).append((idx, b))

    result: list[tuple[int, int]] = []
    for key, r_items in tiles_r.items():
        s_items = tiles_s.get(key)
        if not s_items:
            continue
        tx, ty = key
        tile_xmin = universe.xmin + tx * tile_w
        tile_ymin = universe.ymin + ty * tile_h
        for i, rb in r_items:
            for j, sb in s_items:
                if not rb.intersects(sb):
                    continue
                # Reference point: lower-left corner of the intersection.
                ref_x = max(rb.xmin, sb.xmin)
                ref_y = max(rb.ymin, sb.ymin)
                owner_x = min(tiles_per_dim - 1, max(0, int((ref_x - universe.xmin) / tile_w)))
                owner_y = min(tiles_per_dim - 1, max(0, int((ref_y - universe.ymin) / tile_h)))
                if (owner_x, owner_y) == key:
                    result.append((i, j))
    return result


__all__ = [
    "brute_force_mbr_join",
    "grid_partitioned_mbr_join",
    "plane_sweep_mbr_join",
]
