"""Tests for the grid, the rasteriser and APRIL invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Box, Location, Polygon
from repro.geometry.predicates import locate_point_in_polygon
from repro.raster import (
    RasterGrid,
    RasterizationError,
    build_april,
    rasterize_polygon,
)

GRID = RasterGrid(Box(0, 0, 16, 16), order=4)  # 16x16 unit cells


def regular(n, cx, cy, radius):
    return Polygon(
        [
            (cx + radius * math.cos(2 * math.pi * i / n), cy + radius * math.sin(2 * math.pi * i / n))
            for i in range(n)
        ]
    )


class TestGrid:
    def test_shape(self):
        assert GRID.side == 16
        assert GRID.num_cells == 256
        assert GRID.cell_width == 1.0 and GRID.cell_height == 1.0

    def test_order_bounds(self):
        with pytest.raises(ValueError):
            RasterGrid(Box(0, 0, 1, 1), order=0)
        with pytest.raises(ValueError):
            RasterGrid(Box(0, 0, 1, 1), order=17)

    def test_degenerate_dataspace(self):
        with pytest.raises(ValueError):
            RasterGrid(Box(0, 0, 0, 1), order=4)

    def test_cell_of_point(self):
        assert GRID.cell_of_point(0.5, 0.5) == (0, 0)
        assert GRID.cell_of_point(15.9, 0.1) == (15, 0)
        # Clamping outside the dataspace.
        assert GRID.cell_of_point(-5, 20) == (0, 15)

    def test_cell_box_roundtrip(self):
        b = GRID.cell_box(3, 7)
        assert b == Box(3, 7, 4, 8)
        assert GRID.cell_of_point(*GRID.cell_center(3, 7)) == (3, 7)

    def test_cell_range_of_box(self):
        assert GRID.cell_range_of_box(Box(1.5, 2.5, 3.5, 3.5)) == (1, 2, 3, 3)

    def test_cell_range_clamped(self):
        assert GRID.cell_range_of_box(Box(-10, -10, 100, 100)) == (0, 0, 15, 15)

    def test_nonsquare_dataspace(self):
        g = RasterGrid(Box(0, 0, 32, 8), order=3)
        assert g.cell_width == 4.0 and g.cell_height == 1.0

    def test_compatibility(self):
        g1 = RasterGrid(Box(0, 0, 16, 16), order=4)
        g2 = RasterGrid(Box(0, 0, 16, 16), order=5)
        assert GRID.compatible_with(g1)
        assert not GRID.compatible_with(g2)


class TestRasterize:
    def test_aligned_square(self):
        cells = rasterize_polygon(Polygon.box(2, 2, 6, 6), GRID)
        full = {tuple(map(int, c)) for c in cells.full}
        partial = {tuple(map(int, c)) for c in cells.partial}
        assert full == {(c, r) for c in range(3, 5) for r in range(3, 5)}
        # Boundary runs along grid lines: both sides are marked, clipped
        # to the object's own MBR cell range (cols/rows 2..6).
        assert (2, 3) in partial and (6, 3) in partial
        assert (5, 3) in partial  # inner side of the x=6 boundary line
        assert (2, 2) in partial and (5, 5) in partial
        assert (1, 3) not in partial  # outside the MBR cell range

    def test_unaligned_square(self):
        cells = rasterize_polygon(Polygon.box(2.5, 2.5, 5.5, 5.5), GRID)
        full = {tuple(c) for c in cells.full}
        partial = {tuple(c) for c in cells.partial}
        assert full == {(c, r) for c in range(3, 5) for r in range(3, 5)}
        assert partial == {
            (c, r) for c in range(2, 6) for r in range(2, 6) if not (3 <= c <= 4 and 3 <= r <= 4)
        }

    def test_thin_sliver_no_full_cells(self):
        cells = rasterize_polygon(Polygon([(0.1, 0.1), (9.9, 0.2), (9.9, 0.3)]), GRID)
        assert cells.full.size == 0
        assert cells.partial.size > 0

    def test_too_many_cells_raises(self):
        grid = RasterGrid(Box(0, 0, 16, 16), order=10)
        with pytest.raises(RasterizationError):
            rasterize_polygon(Polygon.box(0, 0, 16, 16), grid, max_cells=100)

    def test_hole_cells_not_full(self):
        donut = Polygon(
            [(1, 1), (9, 1), (9, 9), (1, 9)], [[(3, 3), (7, 3), (7, 7), (3, 7)]]
        )
        cells = rasterize_polygon(donut, GRID)
        full = {tuple(c) for c in cells.full}
        partial = {tuple(c) for c in cells.partial}
        # Hole interior cells are neither full nor partial.
        for c in range(4, 6):
            for r in range(4, 6):
                assert (c, r) not in full and (c, r) not in partial
        # Band cells are full.
        assert (1, 1) in full or (1, 1) in partial


class TestAprilInvariants:
    POLYGONS = [
        Polygon.box(2, 2, 6, 6),
        Polygon.box(2.5, 2.5, 5.5, 5.5),
        regular(7, 8, 8, 5.0),
        regular(23, 6, 9, 4.3),
        Polygon([(1, 1), (14, 2), (13, 13), (3, 12)], [[(5, 5), (9, 5), (9, 9), (5, 9)]]),
        Polygon([(0.1, 0.1), (15.9, 0.2), (8.0, 15.8)]),
    ]

    @pytest.mark.parametrize("poly", POLYGONS)
    def test_p_subset_of_c(self, poly):
        ap = build_april(poly, GRID)
        assert ap.p.inside(ap.c)
        assert ap.c.contains(ap.p)

    @pytest.mark.parametrize("poly", POLYGONS)
    def test_p_cells_strictly_interior(self, poly):
        """Every corner of every P cell is strictly inside the polygon."""
        ap = build_april(poly, GRID)
        for cid in ap.p.iter_cells():
            col, row = GRID.cell_of_hilbert_id(cid)
            for corner in GRID.cell_box(col, row).corners():
                assert locate_point_in_polygon(corner, poly) is Location.INTERIOR

    @pytest.mark.parametrize("poly", POLYGONS)
    def test_c_covers_object(self, poly):
        """Dense samples of the polygon always land in a C cell."""
        ap = build_april(poly, GRID)
        bbox = poly.bbox
        for i in range(25):
            for j in range(25):
                x = bbox.xmin + (i + 0.5) / 25 * bbox.width
                y = bbox.ymin + (j + 0.5) / 25 * bbox.height
                if locate_point_in_polygon((x, y), poly) is Location.EXTERIOR:
                    continue
                col, row = GRID.cell_of_point(x, y)
                assert ap.c.covers_cell(GRID.hilbert_id(col, row))

    @pytest.mark.parametrize("poly", POLYGONS)
    def test_non_c_cells_disjoint_from_object(self, poly):
        """Cell centres outside C are strictly outside the polygon."""
        ap = build_april(poly, GRID)
        lo_c, lo_r, hi_c, hi_r = GRID.cell_range_of_box(poly.bbox)
        for col in range(lo_c, hi_c + 1):
            for row in range(lo_r, hi_r + 1):
                if ap.c.covers_cell(GRID.hilbert_id(col, row)):
                    continue
                center = GRID.cell_center(col, row)
                assert locate_point_in_polygon(center, poly) is Location.EXTERIOR

    def test_thin_polygon_empty_p(self):
        ap = build_april(Polygon([(0.1, 0.1), (9.9, 0.2), (9.9, 0.3)]), GRID)
        assert not ap.has_full_cells
        assert ap.p.cell_count == 0

    def test_grid_compatibility_check(self):
        other = RasterGrid(Box(0, 0, 16, 16), order=5)
        a = build_april(Polygon.box(1, 1, 3, 3), GRID)
        b = build_april(Polygon.box(1, 1, 3, 3), other)
        with pytest.raises(ValueError):
            a.check_compatible(b)

    @given(
        st.integers(3, 12),
        st.floats(3, 13),
        st.floats(3, 13),
        st.floats(0.5, 2.8),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_regular_polygon_invariants(self, n, cx, cy, radius):
        poly = regular(n, cx, cy, radius)
        ap = build_april(poly, GRID)
        assert ap.p.inside(ap.c)
        # The C area must be at least the polygon area.
        c_area = ap.c.cell_count * GRID.cell_width * GRID.cell_height
        assert c_area >= poly.area - 1e-9
        # The P area can never exceed the polygon area.
        p_area = ap.p.cell_count * GRID.cell_width * GRID.cell_height
        assert p_area <= poly.area + 1e-9
