"""Bench-trajectory ingestion, trends, and noise-aware regression gates.

Seven ``BENCH_*.json`` files at the repo root encode the project's
performance trajectory — one JSON list per subsystem, one entry
appended per benchmark run — but until this module they were
write-only. Here they become data:

* :func:`append_entry` is the single writer every ``benchmarks/``
  suite records through; it stamps the common **envelope**
  (``schema_version``, UTC timestamp, git revision, machine
  fingerprint from :mod:`repro.optimizer.cost`) so the trajectory is
  uniformly attributable. Pre-envelope entries stay readable — every
  reader treats the envelope as optional.
* :func:`load_trajectories` ingests every ``BENCH_*.json`` under a
  root directory.
* :func:`compute_trends` turns each (file, kind, context, metric)
  series into a :class:`Trend` — latest value, baseline, change — and
  flags regressions with a **noise-aware threshold**: latest vs the
  median of prior comparable entries, where "worse by more than
  ``max(noise_mads × MAD, rel_floor × |baseline|)``" flags. The MAD
  term adapts to each series' observed jitter; the relative floor
  stops a zero-variance history (one prior entry, or identical
  repeats) from flagging harmless wobble.

Entries are only compared within a **context group** — same scenario,
scale, grid order, worker count, cpu count… (:data:`CONTEXT_KEYS`) —
the same comparability rule the PR 3 overhead gate already applies,
because wall-clock from different machines or workloads is not one
series. Metric *direction* is classified by name
(:func:`metric_direction`): ``speedup``-like metrics regress downward,
``*_seconds``/``*_ratio``/``*_bytes`` regress upward, and calibration
yardsticks (``calib_seconds``, ``baseline_*``) are never gated.

Stdlib only; the one ``repro`` import (machine fingerprint) is lazy.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

__all__ = [
    "CONTEXT_KEYS",
    "SCHEMA_VERSION",
    "Trend",
    "append_entry",
    "check_regressions",
    "compute_trends",
    "format_regressions",
    "load_trajectories",
    "load_trajectory",
    "make_envelope",
    "metric_direction",
]

SCHEMA_VERSION = 1

#: Keys that define *which runs are comparable*, not how fast they ran.
#: Two entries compare only when every context key they carry matches.
CONTEXT_KEYS = (
    "scenario",
    "scale",
    "grid_order",
    "size_grid_order",
    "workers",
    "partitions",
    "cpu_count",
    "schedule",
)

#: Metrics where a *drop* is the regression.
_HIGHER_BETTER = frozenset(
    {"speedup", "size_ratio", "fine_size_ratio", "serial_vs_baseline"}
)

#: Numeric fields that are yardsticks or identifiers, never gated:
#: ``calib_seconds`` measures the machine, ``baseline_*`` are the
#: recorded reference points the gated ratios were computed against.
_NEVER_GATED = frozenset(
    {
        "calib_seconds",
        "baseline_ratio",
        "baseline_serial_seconds",
        # Opt-in measurement cost (sampling profiler + tracemalloc) is
        # recorded for the trajectory but never trend-gated: the user
        # asked for the measurement, and tracemalloc alone legitimately
        # multiplies allocation-heavy phases run-to-run.
        "enabled_overhead_pct",
        "enabled_seconds",
        "scale",
        "grid_order",
        "size_grid_order",
        "workers",
        "partitions",
        "cpu_count",
        "pairs",
        "polygons",
        "r_objects",
        "s_objects",
        "links",
        "schema_version",
    }
)

_LOWER_SUFFIXES = (
    "_seconds",
    "_us",
    "_ms",
    "_pct",
    "_ratio",
    "_bytes",
    "_bytes_total",
    "_bytes_per_object",
    "_per_object",
    "overhead",
)


def metric_direction(key: str) -> str | None:
    """``"lower"``/``"higher"`` (better) for gated metrics, else ``None``."""
    if key in _NEVER_GATED:
        return None
    if key in _HIGHER_BETTER:
        return "higher"
    if key == "ratio" or key.endswith(_LOWER_SUFFIXES):
        return "lower"
    return None


# ----------------------------------------------------------------------
# envelope + writer
# ----------------------------------------------------------------------
def _git_rev(cwd: Path) -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def make_envelope(cwd: str | Path | None = None) -> dict[str, Any]:
    """The provenance envelope stamped onto every new bench entry."""
    try:
        from repro.optimizer.cost import CalibrationProfile

        machine = CalibrationProfile.machine_fingerprint()
    except Exception:  # pragma: no cover - fingerprint is best-effort
        import os
        import sys

        machine = {"cpu_count": os.cpu_count() or 1, "platform": sys.platform}
    return {
        "schema_version": SCHEMA_VERSION,
        "recorded_utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git_rev": _git_rev(Path(cwd) if cwd else Path.cwd()),
        "machine": machine,
    }


def append_entry(path: str | Path, entry: dict[str, Any]) -> dict[str, Any]:
    """Append ``entry`` to the trajectory at ``path``, enveloped.

    The shared read-append-write previously copy-pasted across every
    ``benchmarks/test_bench_*.py``; returns the stamped entry.
    """
    path = Path(path)
    entry = dict(entry)
    entry.setdefault("envelope", make_envelope(cwd=path.parent))
    trajectory: list[dict[str, Any]] = []
    if path.exists():
        trajectory = json.loads(path.read_text())
    trajectory.append(entry)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return entry


# ----------------------------------------------------------------------
# ingestion
# ----------------------------------------------------------------------
def load_trajectory(path: str | Path) -> list[dict[str, Any]]:
    """One ``BENCH_*.json`` as its entry list (chronological order)."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON list of entries")
    return [e for e in data if isinstance(e, dict)]


def load_trajectories(root: str | Path) -> dict[str, list[dict[str, Any]]]:
    """Every ``BENCH_*.json`` directly under ``root``, by file name."""
    root = Path(root)
    out: dict[str, list[dict[str, Any]]] = {}
    for path in sorted(root.glob("BENCH_*.json")):
        out[path.name] = load_trajectory(path)
    return out


def _context_of(entry: dict[str, Any]) -> tuple[tuple[str, Any], ...]:
    return tuple((k, entry[k]) for k in CONTEXT_KEYS if k in entry)


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


# ----------------------------------------------------------------------
# trends + gate
# ----------------------------------------------------------------------
@dataclass
class Trend:
    """One metric's history within a comparable context group."""

    file: str
    kind: str
    context: dict[str, Any]
    metric: str
    direction: str
    values: list[float] = field(default_factory=list)
    latest: float = 0.0
    baseline: float | None = None  #: median of prior entries (None: no prior)
    change_pct: float | None = None  #: latest vs baseline, signed
    threshold_pct: float | None = None  #: flagging threshold actually applied
    flagged: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "file": self.file,
            "kind": self.kind,
            "context": dict(self.context),
            "metric": self.metric,
            "direction": self.direction,
            "values": list(self.values),
            "latest": self.latest,
            "baseline": self.baseline,
            "change_pct": self.change_pct,
            "threshold_pct": self.threshold_pct,
            "flagged": self.flagged,
        }


def compute_trends(
    trajectories: dict[str, list[dict[str, Any]]],
    noise_mads: float = 4.0,
    rel_floor: float = 0.25,
) -> list[Trend]:
    """Per-metric trends over every comparable series, regression-flagged.

    A series is the chronological values of one gated metric within one
    ``(file, kind, context)`` group. The newest value is judged against
    the median of the prior ones; it flags when worse by more than
    ``max(noise_mads × MAD(priors), rel_floor × |median|)`` in the
    metric's bad direction. Series with no prior entry produce a trend
    with ``baseline=None`` and never flag.
    """
    trends: list[Trend] = []
    for file_name in sorted(trajectories):
        groups: dict[tuple[str, tuple], list[dict[str, Any]]] = {}
        for entry in trajectories[file_name]:
            kind = str(entry.get("kind", ""))
            groups.setdefault((kind, _context_of(entry)), []).append(entry)
        for (kind, context), entries in sorted(groups.items()):
            metrics: dict[str, list[float]] = {}
            for entry in entries:
                for key, value in entry.items():
                    if isinstance(value, bool) or not isinstance(
                        value, (int, float)
                    ):
                        continue
                    if metric_direction(key) is not None:
                        metrics.setdefault(key, []).append(float(value))
            for metric in sorted(metrics):
                values = metrics[metric]
                direction = metric_direction(metric) or "lower"
                trend = Trend(
                    file=file_name,
                    kind=kind,
                    context=dict(context),
                    metric=metric,
                    direction=direction,
                    values=values,
                    latest=values[-1],
                )
                priors = values[:-1]
                if priors:
                    baseline = _median(priors)
                    mad = _median([abs(v - baseline) for v in priors])
                    threshold = max(noise_mads * mad, rel_floor * abs(baseline))
                    trend.baseline = baseline
                    if baseline:
                        trend.change_pct = (
                            (values[-1] - baseline) / abs(baseline) * 100.0
                        )
                        trend.threshold_pct = threshold / abs(baseline) * 100.0
                    delta = values[-1] - baseline
                    if direction == "lower":
                        trend.flagged = delta > threshold
                    else:
                        trend.flagged = -delta > threshold
                trends.append(trend)
    return trends


def check_regressions(
    root: str | Path,
    noise_mads: float = 4.0,
    rel_floor: float = 0.25,
) -> dict[str, Any]:
    """Run the gate over every trajectory under ``root``.

    Returns ``{"checked": n_series, "regressions": [Trend dicts]}`` —
    the shape both the CI step and ``repro report`` consume.
    """
    trends = compute_trends(
        load_trajectories(root), noise_mads=noise_mads, rel_floor=rel_floor
    )
    return {
        "checked": len(trends),
        "regressions": [t.to_dict() for t in trends if t.flagged],
    }


def format_regressions(report: dict[str, Any]) -> str:
    """Human-readable gate verdict for stderr / CI logs."""
    regs = report.get("regressions", [])
    lines = [
        f"bench-trend: {report.get('checked', 0)} series checked, "
        f"{len(regs)} regression(s)"
    ]
    for reg in regs:
        ctx = " ".join(f"{k}={v}" for k, v in reg.get("context", {}).items())
        lines.append(
            f"  REGRESSION {reg['file']}::{reg['kind']}::{reg['metric']} "
            f"latest={reg['latest']:g} baseline={reg['baseline']:g} "
            f"({reg['change_pct']:+.1f}%, threshold ±{reg['threshold_pct']:.1f}%)"
            + (f" [{ctx}]" if ctx else "")
        )
    return "\n".join(lines)
