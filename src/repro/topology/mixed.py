"""Mixed-dimension DE-9IM: points and lines against anything.

The areal pipeline (Sec. 3) covers polygon-polygon pairs; DE-9IM
itself is defined for 0-, 1- and 2-dimensional shapes, and the paper's
application domains relate them freely (stations in districts, rivers
against parks). This module computes boolean DE-9IM matrices for every
mix of :class:`Point`-like tuples, :class:`LineString` and areal
geometries (Polygon / MultiPolygon), reusing the boundary-subdivision
machinery of :mod:`repro.topology.relate`.

Topology conventions (OGC, simplified to *simple* linestrings):

- a point's interior is itself; its boundary is empty;
- a linestring's boundary is its two endpoints (empty when closed);
  its interior is the rest of the curve;
- areal geometries are as in :mod:`repro.topology.relate`.
"""

from __future__ import annotations

from typing import Iterable

from repro.geometry.linestring import LineString
from repro.geometry.multipolygon import MultiPolygon
from repro.geometry.polygon import Polygon
from repro.geometry.predicates import Location
from repro.topology.de9im import DE9IM
from repro.topology.relate import _subedge_midpoints, relate_details
from repro.topology.sweep import boundary_intersections

Coord = tuple[float, float]
Areal = (Polygon, MultiPolygon)


def relate_mixed(a, b) -> DE9IM:
    """Boolean DE-9IM matrix for any mix of point/line/areal geometries.

    Points may be given as plain ``(x, y)`` tuples. Linestrings must be
    simple (non-self-intersecting).
    """
    kind_a = _kind(a)
    kind_b = _kind(b)
    if kind_a == "point" and kind_b == "point":
        return _point_point(_as_coord(a), _as_coord(b))
    if kind_a == "point" and kind_b == "line":
        return _point_line(_as_coord(a), b)
    if kind_a == "line" and kind_b == "point":
        return _point_line(_as_coord(b), a).transposed()
    if kind_a == "point" and kind_b == "area":
        return _point_area(_as_coord(a), b)
    if kind_a == "area" and kind_b == "point":
        return _point_area(_as_coord(b), a).transposed()
    if kind_a == "line" and kind_b == "line":
        return _line_line(a, b)
    if kind_a == "line" and kind_b == "area":
        return _line_area(a, b)
    if kind_a == "area" and kind_b == "line":
        return _line_area(b, a).transposed()
    return relate_details(a, b).matrix


def _kind(geometry) -> str:
    if isinstance(geometry, Areal):
        return "area"
    if isinstance(geometry, LineString):
        return "line"
    if isinstance(geometry, tuple) and len(geometry) == 2:
        return "point"
    raise TypeError(f"unsupported geometry for relate_mixed: {type(geometry).__name__}")


def _as_coord(geometry) -> Coord:
    return (float(geometry[0]), float(geometry[1]))


# ----------------------------------------------------------------------
# point cases
# ----------------------------------------------------------------------
def _point_point(p: Coord, q: Coord) -> DE9IM:
    same = p == q
    return DE9IM.from_cells(
        same, False, not same,
        False, False, False,
        not same, False, True,
    )


def _point_line(p: Coord, line: LineString) -> DE9IM:
    on_interior = line.point_on_interior(p)
    on_boundary = p in line.endpoints
    off = not on_interior and not on_boundary
    has_boundary = bool(line.endpoints)
    return DE9IM.from_cells(
        on_interior, on_boundary, off,
        False, False, False,
        True,  # a line's interior always has points besides p
        # A non-closed line has two *distinct* endpoints, so at least
        # one of them differs from p; a closed line has no boundary.
        has_boundary,
        True,
    )


def _point_area(p: Coord, area) -> DE9IM:
    where = area.locate(p)
    return DE9IM.from_cells(
        where is Location.INTERIOR, where is Location.BOUNDARY, where is Location.EXTERIOR,
        False, False, False,
        True, True, True,
    )


# ----------------------------------------------------------------------
# line cases
# ----------------------------------------------------------------------
def _line_area(line: LineString, area) -> DE9IM:
    inter = boundary_intersections(line, area)

    # Classify the line's non-ON sub-edge midpoints against the area.
    midpoints = _subedge_midpoints(line, inter.cuts_r, inter.overlaps_r)
    mid_locs = [area.locate(m) for m in midpoints]
    ii = any(loc is Location.INTERIOR for loc in mid_locs)
    ie = any(loc is Location.EXTERIOR for loc in mid_locs)

    # Interior-of-line contact with the area's boundary: a collinear
    # overlap piece, or a recorded contact point that is not a line
    # endpoint. Contact points lie on the line *by construction* (they
    # were recorded as cuts of its edges), so only the endpoint test is
    # needed — an exact geometric re-check would reject float-computed
    # crossing coordinates.
    endpoints = set(line.endpoints)
    contact_points = {p for pts in inter.cuts_r.values() for p in pts}
    ib = bool(inter.overlaps_r) or any(p not in endpoints for p in contact_points)

    # Line boundary (endpoints) against the area.
    bi = bb = be = False
    for endpoint in endpoints:
        where = area.locate(endpoint)
        bi = bi or where is Location.INTERIOR
        bb = bb or where is Location.BOUNDARY
        be = be or where is Location.EXTERIOR

    # Area side: its interior always has points off the (measure-zero)
    # line; its boundary escapes the line unless entirely covered.
    s_free_midpoints = _subedge_midpoints(area, inter.cuts_s, inter.overlaps_s)
    eb = bool(s_free_midpoints)
    return DE9IM.from_cells(ii, ib, ie, bi, bb, be, True, eb, True)


def _line_line(r: LineString, s: LineString) -> DE9IM:
    inter = boundary_intersections(r, s)
    r_ends = set(r.endpoints)
    s_ends = set(s.endpoints)
    contact_points = {p for pts in inter.cuts_r.values() for p in pts} | {
        p for pts in inter.cuts_s.values() for p in pts
    }

    # Contact points lie on both lines by construction (the sweep only
    # records mutual intersections), so interior-vs-boundary is purely
    # an endpoint-membership question — exact re-checks would reject
    # float-computed crossing coordinates.
    # Shared 1-D pieces are interior-interior except at their very tips.
    ii = bool(inter.overlaps_r) or any(
        p not in r_ends and p not in s_ends for p in contact_points
    )
    ib = any(p not in r_ends and p in s_ends for p in contact_points)
    bi = any(p in r_ends and p not in s_ends for p in contact_points)
    bb = bool(r_ends & s_ends) or any(
        p in r_ends and p in s_ends for p in contact_points
    )

    # Non-ON sub-edges witness interior points off the other line.
    ie = bool(_subedge_midpoints(r, inter.cuts_r, inter.overlaps_r))
    ei = bool(_subedge_midpoints(s, inter.cuts_s, inter.overlaps_s))

    be = any(not s.covers_point(p) for p in r_ends)
    eb = any(not r.covers_point(p) for p in s_ends)
    return DE9IM.from_cells(ii, ib, ie, bi, bb, be, ei, eb, True)


def intersects_mixed(a, b) -> bool:
    """Convenience: do the two geometries share any point?"""
    matrix = relate_mixed(a, b)
    return matrix.II or matrix.IB or matrix.BI or matrix.BB


__all__ = ["intersects_mixed", "relate_mixed"]
