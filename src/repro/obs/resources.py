"""Phase-level resource accounting: memory peaks, RSS, payload bytes.

The decode-work law (PAPERS.md) prices a join in *bytes touched*, not
just seconds; this module supplies the byte side of the ledger. When
enabled it hooks the span tracer (:func:`repro.obs.trace.register_span_hook`)
and annotates every span with its tracemalloc figures:

``mem_peak_bytes``
    Peak traced allocation while the span (or any descendant) was
    open. tracemalloc exposes a single process-wide peak, so nesting
    is handled with a bubbling stack: the peak window is reset when a
    span opens, and a child's measured peak is propagated into the
    parent's pending figure on exit — the parent's final peak is the
    max of its own windows and every child's.
``mem_net_bytes``
    Net traced allocation delta across the span (may be negative:
    the span freed more than it allocated).

:func:`run_resources` then assembles the run-envelope summary —
process max-RSS (``getrusage``; kilobytes on Linux, bytes on macOS),
tracemalloc totals, per-phase peaks (span names normalised through the
profiler's :data:`~repro.obs.profile.PHASE_ALIASES`), and payload
stored/decoded bytes joined from the existing metric counters
(``repro_april_bytes`` / ``repro_payload_decoded_bytes_total``).

Fork model matches the rest of ``repro.obs``: workers inherit the
enabled flag, :func:`begin_worker_capture` restarts capture,
:func:`export_resources` returns a picklable payload, and
:func:`merge_resources` folds worker payloads in (peaks combine with
``max``, the only order-independent choice, so the merge is
deterministic).

Stdlib only. ``tracemalloc`` costs real time while tracing is on
(every allocation is recorded), which is why this module is opt-in and
its *disabled* path — one flag check — is what the BENCH_obs overhead
gate covers.
"""

from __future__ import annotations

import sys
import tracemalloc
from typing import Any

from . import trace as _trace
from .profile import normalize_phase

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None  # type: ignore[assignment]

__all__ = [
    "begin_worker_capture",
    "export_resources",
    "max_rss_bytes",
    "merge_resources",
    "phase_peaks",
    "reset_resources",
    "resources_enabled",
    "run_resources",
    "set_resources",
]

_ENABLED = False
_STARTED_TRACEMALLOC = False
#: One entry per open span: ``{"enter_current": int, "pending_peak": int}``.
_WINDOWS: list[dict[str, int]] = []
#: Max peak per normalised phase across the run.
_PHASE_PEAKS: dict[str, int] = {}
_RUN_PEAK = 0


def _on_enter(span: _trace.Span) -> None:
    current, _peak = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    _WINDOWS.append({"enter_current": current, "pending_peak": 0})


def _on_exit(span: _trace.Span) -> None:
    global _RUN_PEAK
    if not _WINDOWS:
        return
    current, peak = tracemalloc.get_traced_memory()
    window = _WINDOWS.pop()
    true_peak = max(peak, window["pending_peak"])
    span.attrs["mem_peak_bytes"] = true_peak
    span.attrs["mem_net_bytes"] = current - window["enter_current"]
    phase = normalize_phase(span.name)
    if true_peak > _PHASE_PEAKS.get(phase, 0):
        _PHASE_PEAKS[phase] = true_peak
    if true_peak > _RUN_PEAK:
        _RUN_PEAK = true_peak
    if _WINDOWS:
        parent = _WINDOWS[-1]
        if true_peak > parent["pending_peak"]:
            parent["pending_peak"] = true_peak
    # Start a fresh window for the remainder of the parent span (or the
    # next top-level span) so its own post-child allocations register.
    tracemalloc.reset_peak()


def set_resources(enabled: bool) -> None:
    """Turn resource accounting on or off (module-wide).

    Enabling starts ``tracemalloc`` if it is not already tracing (and
    remembers that, so disabling stops it only when this module started
    it) and registers the span hooks.
    """
    global _ENABLED, _STARTED_TRACEMALLOC
    if enabled == _ENABLED:
        return
    if enabled:
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            _STARTED_TRACEMALLOC = True
        _trace.register_span_hook(_on_enter, _on_exit)
        _ENABLED = True
    else:
        _trace.unregister_span_hook(_on_enter, _on_exit)
        if _STARTED_TRACEMALLOC and tracemalloc.is_tracing():
            tracemalloc.stop()
        _STARTED_TRACEMALLOC = False
        _ENABLED = False


def resources_enabled() -> bool:
    return _ENABLED


def reset_resources() -> None:
    """Drop per-phase figures (the enabled flag is unchanged)."""
    global _WINDOWS, _PHASE_PEAKS, _RUN_PEAK
    _WINDOWS = []
    _PHASE_PEAKS = {}
    _RUN_PEAK = 0
    if _ENABLED and tracemalloc.is_tracing():
        tracemalloc.reset_peak()


def begin_worker_capture() -> None:
    """Start fresh capture in a forked worker.

    The worker inherited the parent's enabled flag and hook
    registration by ``fork``; tracemalloc keeps tracing across the
    fork, so only the accumulated figures need clearing.
    """
    reset_resources()


def max_rss_bytes() -> int | None:
    """Process lifetime max-RSS in bytes (``None`` where unavailable).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS — the one
    portability wart this helper exists to hide.
    """
    if _resource is None:
        return None
    rss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(rss)
    return int(rss) * 1024


def phase_peaks() -> dict[str, int]:
    """Max traced-memory peak per phase, alphabetically ordered."""
    return {k: _PHASE_PEAKS[k] for k in sorted(_PHASE_PEAKS)}


def export_resources() -> dict[str, Any] | None:
    """Worker-side payload (picklable) for the parent to merge."""
    if not _ENABLED:
        return None
    current, peak = tracemalloc.get_traced_memory()
    return {
        "phase_peaks": phase_peaks(),
        "run_peak_bytes": max(_RUN_PEAK, peak),
        "max_rss_bytes": max_rss_bytes(),
        "tracemalloc_current_bytes": current,
    }


def merge_resources(payloads: list[dict[str, Any] | None]) -> None:
    """Fold worker payloads into the parent's figures.

    Peaks merge with ``max`` — per-process peaks are not additive (the
    processes hold copy-on-write views of the same parent heap) and
    ``max`` is order-independent, keeping the merged result
    deterministic regardless of worker scheduling.
    """
    global _RUN_PEAK
    for payload in payloads:
        if not payload:
            continue
        for phase, peak in payload.get("phase_peaks", {}).items():
            if peak > _PHASE_PEAKS.get(phase, 0):
                _PHASE_PEAKS[phase] = int(peak)
        run_peak = int(payload.get("run_peak_bytes", 0))
        if run_peak > _RUN_PEAK:
            _RUN_PEAK = run_peak


def run_resources(registry: Any | None = None) -> dict[str, Any] | None:
    """Run-envelope resource summary (``None`` while disabled).

    ``registry`` is an optional :class:`~repro.obs.metrics.MetricsRegistry`
    used to join the payload byte counters; pass the registry the run
    actually recorded into (the global one in the common case).
    """
    if not _ENABLED:
        return None
    current, peak = tracemalloc.get_traced_memory()
    out: dict[str, Any] = {
        "max_rss_bytes": max_rss_bytes(),
        "tracemalloc_peak_bytes": max(_RUN_PEAK, peak),
        "tracemalloc_current_bytes": current,
        "phase_peaks": phase_peaks(),
    }
    if registry is not None:
        stored = 0.0
        for (name, _key), hist in registry.histograms.items():
            if name == "repro_april_bytes":
                stored += hist.sum
        decoded = 0
        for (name, _key), value in registry.counters.items():
            if name == "repro_payload_decoded_bytes_total":
                decoded += value
        out["payload"] = {
            "stored_bytes": int(stored),
            "decoded_bytes": int(decoded),
        }
    return out
