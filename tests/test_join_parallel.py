"""Tests for the multiprocessing parallel runner."""

import pytest

from repro.datasets import load_scenario
from repro.join.parallel import run_find_relation_parallel
from repro.join.pipeline import run_find_relation


@pytest.fixture(scope="module")
def scenario():
    return load_scenario("OLE-OPE", scale=0.3, grid_order=10)


class TestParallel:
    def test_single_worker_falls_back_to_scalar(self, scenario):
        stats, wall = run_find_relation_parallel(
            "P+C", scenario.r_objects, scenario.s_objects, scenario.pairs, workers=1
        )
        scalar = run_find_relation("P+C", scenario.r_objects, scenario.s_objects, scenario.pairs)
        assert stats.relation_counts == scalar.relation_counts
        assert wall > 0

    def test_two_workers_same_counts(self, scenario):
        stats, wall = run_find_relation_parallel(
            "P+C", scenario.r_objects, scenario.s_objects, scenario.pairs, workers=2
        )
        scalar = run_find_relation("P+C", scenario.r_objects, scenario.s_objects, scenario.pairs)
        assert stats.pairs == scalar.pairs
        assert stats.relation_counts == scalar.relation_counts
        assert stats.refined == scalar.refined
        assert wall > 0

    def test_geometry_access_deduplicated(self, scenario):
        stats, _ = run_find_relation_parallel(
            "P+C", scenario.r_objects, scenario.s_objects, scenario.pairs, workers=2
        )
        scalar = run_find_relation("P+C", scenario.r_objects, scenario.s_objects, scenario.pairs)
        assert stats.r_objects_accessed == scalar.r_objects_accessed
        assert stats.s_objects_accessed == scalar.s_objects_accessed
        assert stats.r_objects_total == len(scenario.r_objects)

    def test_st2_parallel(self, scenario):
        pairs = scenario.pairs[:40]
        stats, _ = run_find_relation_parallel(
            "ST2", scenario.r_objects, scenario.s_objects, pairs, workers=2
        )
        scalar = run_find_relation("ST2", scenario.r_objects, scenario.s_objects, pairs)
        assert stats.relation_counts == scalar.relation_counts

    def test_empty_pairs(self, scenario):
        stats, _ = run_find_relation_parallel(
            "P+C", scenario.r_objects, scenario.s_objects, [], workers=2
        )
        assert stats.pairs == 0

    def test_unknown_pipeline_rejected(self, scenario):
        with pytest.raises(KeyError):
            run_find_relation_parallel(
                "NOPE", scenario.r_objects, scenario.s_objects, scenario.pairs
            )

    def test_custom_chunk_size(self, scenario):
        stats, _ = run_find_relation_parallel(
            "P+C", scenario.r_objects, scenario.s_objects, scenario.pairs,
            workers=2, chunk_size=3,
        )
        assert stats.pairs == len(scenario.pairs)
