"""Unit and property tests for Ring and Polygon."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Box, Location, Polygon, Ring


def regular_polygon(n, cx=0.0, cy=0.0, radius=1.0):
    pts = []
    for i in range(n):
        a = 2 * math.pi * i / n
        pts.append((cx + radius * math.cos(a), cy + radius * math.sin(a)))
    return pts


class TestRing:
    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            Ring([(0, 0), (1, 1)])

    def test_accepts_closed_input(self):
        r = Ring([(0, 0), (1, 0), (1, 1), (0, 0)])
        assert len(r) == 3

    def test_dedupes_consecutive(self):
        r = Ring([(0, 0), (0, 0), (1, 0), (1, 1), (1, 1)])
        assert len(r) == 3

    def test_signed_area_ccw_positive(self):
        assert Ring([(0, 0), (2, 0), (2, 2), (0, 2)]).signed_area == 4

    def test_signed_area_cw_negative(self):
        assert Ring([(0, 2), (2, 2), (2, 0), (0, 0)]).signed_area == -4

    def test_oriented(self):
        cw = Ring([(0, 2), (2, 2), (2, 0), (0, 0)])
        assert cw.oriented(ccw=True).is_ccw
        assert not cw.oriented(ccw=False).is_ccw

    def test_reversed_flips_area(self):
        r = Ring([(0, 0), (3, 0), (0, 4)])
        assert r.reversed().signed_area == -r.signed_area

    def test_perimeter(self):
        assert Ring([(0, 0), (3, 0), (3, 4)]).perimeter == 12

    def test_bbox(self):
        assert Ring([(0, 0), (3, 1), (1, 4)]).bbox == Box(0, 0, 3, 4)

    def test_edges_count(self):
        r = Ring([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert len(list(r.edges())) == 4

    def test_simple_square(self):
        assert Ring([(0, 0), (1, 0), (1, 1), (0, 1)]).is_simple()

    def test_bowtie_not_simple(self):
        assert not Ring([(0, 0), (2, 2), (2, 0), (0, 2)]).is_simple()

    def test_spike_not_simple(self):
        # Edge doubles back over itself (collinear overlap).
        assert not Ring([(0, 0), (4, 0), (2, 0), (2, 3)]).is_simple()

    def test_translated(self):
        r = Ring([(0, 0), (1, 0), (0, 1)]).translated(5, 5)
        assert r.coords[0] == (5, 5)

    def test_scaled_about_origin(self):
        r = Ring([(1, 1), (2, 1), (1, 2)]).scaled(2.0, origin=(1, 1))
        assert (2, 2) in [tuple(c) for c in r.coords] or (3, 1) in r.coords

    @given(st.integers(3, 40))
    def test_regular_polygons_simple_and_ccw(self, n):
        r = Ring(regular_polygon(n))
        assert r.is_simple()
        assert r.is_ccw
        # Area converges to pi for the unit-circle inscribed polygon.
        assert 0 < r.area <= math.pi + 1e-9


class TestPolygon:
    def test_normalises_orientation(self):
        p = Polygon(
            [(0, 2), (2, 2), (2, 0), (0, 0)],  # CW shell
            [[(0.5, 0.5), (1.5, 0.5), (1.5, 1.5), (0.5, 1.5)]],  # CCW hole
        )
        assert p.shell.is_ccw
        assert all(not h.is_ccw for h in p.holes)

    def test_area_with_hole(self):
        p = Polygon.box(0, 0, 4, 4)
        holed = Polygon(p.shell, [[(1, 1), (2, 1), (2, 2), (1, 2)]])
        assert holed.area == 15

    def test_num_vertices_counts_holes(self):
        holed = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)], [[(1, 1), (2, 1), (2, 2), (1, 2)]]
        )
        assert holed.num_vertices == 8

    def test_bbox(self):
        assert Polygon.box(1, 2, 3, 4).bbox == Box(1, 2, 3, 4)

    def test_locate_in_hole_is_exterior(self):
        holed = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)], [[(1, 1), (3, 1), (3, 3), (1, 3)]]
        )
        assert holed.locate((2, 2)) is Location.EXTERIOR
        assert holed.locate((1, 2)) is Location.BOUNDARY
        assert holed.locate((0.5, 0.5)) is Location.INTERIOR

    def test_representative_point_interior(self):
        holed = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)], [[(1, 1), (3, 1), (3, 3), (1, 3)]]
        )
        assert holed.locate(holed.representative_point) is Location.INTERIOR

    def test_representative_point_thin_triangle(self):
        thin = Polygon([(0, 0), (100, 0.001), (100, 0.002)])
        assert thin.locate(thin.representative_point) is Location.INTERIOR

    def test_is_valid_good(self):
        holed = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)], [[(1, 1), (3, 1), (3, 3), (1, 3)]]
        )
        assert holed.is_valid()

    def test_is_valid_hole_outside(self):
        bad = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)], [[(10, 10), (12, 10), (12, 12), (10, 12)]]
        )
        assert not bad.is_valid()

    def test_is_valid_self_intersecting_shell(self):
        bad = Polygon([(0, 0), (2, 2), (2, 0), (0, 2)])
        assert not bad.is_valid()

    def test_translated_preserves_area(self):
        p = Polygon(regular_polygon(9))
        assert abs(p.translated(100, -50).area - p.area) < 1e-12

    def test_scaled_area(self):
        p = Polygon.box(0, 0, 2, 2)
        assert abs(p.scaled(3.0).area - 36) < 1e-9

    def test_equality_and_hash(self):
        a = Polygon.box(0, 0, 1, 1)
        b = Polygon.box(0, 0, 1, 1)
        assert a == b and hash(a) == hash(b)

    @given(st.integers(3, 25), st.floats(-50, 50), st.floats(-50, 50))
    @settings(max_examples=60)
    def test_representative_point_always_interior(self, n, cx, cy):
        p = Polygon(regular_polygon(n, cx, cy, 2.5))
        assert p.locate(p.representative_point) is Location.INTERIOR


class TestLocateProperties:
    @given(
        st.integers(3, 16),
        st.floats(-10, 10),
        st.floats(-10, 10),
        st.floats(0, 2 * math.pi),
        st.floats(0, 3),
    )
    @settings(max_examples=80)
    def test_polar_sample_classification(self, n, cx, cy, angle, rho):
        """Points at radius < r_in are interior; radius > 1 are exterior."""
        poly = Polygon(regular_polygon(n, cx, cy, 1.0))
        r_in = math.cos(math.pi / n)  # inradius of the regular n-gon
        x = cx + rho * math.cos(angle)
        y = cy + rho * math.sin(angle)
        where = poly.locate((x, y))
        if rho < r_in * 0.999:
            assert where is Location.INTERIOR
        elif rho > 1.001:
            assert where is Location.EXTERIOR
