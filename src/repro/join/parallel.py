"""Parallel find-relation execution over candidate-pair streams.

The paper's filter step builds on parallel in-memory spatial joins
[39]; the verification stage parallelises even more naturally, since
every candidate pair is independent. This module fans a pair stream out
to worker processes (fork start method — the object lists are inherited
copy-on-write, so nothing large is pickled per task).

Timing semantics differ from the scalar runner: the returned stats
carry *summed worker CPU time* in ``filter_seconds``/``refine_seconds``
(comparable across methods), while the wall-clock speedup is what the
second return value measures.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Sequence

from repro.join.objects import SpatialObject
from repro.join.pipeline import PIPELINES, Pipeline, run_find_relation
from repro.join.stats import JoinRunStats

# Worker globals, installed by the pool initializer (fork inherits the
# parent's objects; the initializer only records references).
_WORKER: dict = {}


def _init_worker(pipeline_name: str, r_objects, s_objects) -> None:
    _WORKER["pipeline"] = PIPELINES[pipeline_name]
    _WORKER["r_objects"] = r_objects
    _WORKER["s_objects"] = s_objects


def _process_chunk(chunk: list[tuple[int, int]]):
    stats = run_find_relation(
        _WORKER["pipeline"], _WORKER["r_objects"], _WORKER["s_objects"], chunk
    )
    # Geometry-access flags live in the worker's copy; report which
    # object ids were touched so the parent can deduplicate.
    r_ids = [o.oid for o in _WORKER["r_objects"] if o.geometry_accessed]
    s_ids = [o.oid for o in _WORKER["s_objects"] if o.geometry_accessed]
    return stats, r_ids, s_ids


def run_find_relation_parallel(
    pipeline: Pipeline | str,
    r_objects: Sequence[SpatialObject],
    s_objects: Sequence[SpatialObject],
    pairs: Sequence[tuple[int, int]],
    workers: int | None = None,
    chunk_size: int | None = None,
) -> tuple[JoinRunStats, float]:
    """Process ``pairs`` across ``workers`` processes.

    Returns ``(stats, wall_seconds)``. ``stats`` aggregates the worker
    runs (identical relation counts to a scalar run); ``wall_seconds``
    is the end-to-end elapsed time including pool startup.
    """
    name = pipeline if isinstance(pipeline, str) else pipeline.name
    if name not in PIPELINES:
        raise KeyError(f"unknown pipeline {name!r}")
    pairs = list(pairs)
    if workers is None:
        workers = min(4, multiprocessing.cpu_count())
    if workers <= 1 or len(pairs) < 2:
        start = time.perf_counter()
        stats = run_find_relation(name, r_objects, s_objects, pairs)
        return stats, time.perf_counter() - start

    if chunk_size is None:
        chunk_size = max(1, len(pairs) // (workers * 4))
    chunks = [pairs[k : k + chunk_size] for k in range(0, len(pairs), chunk_size)]

    start = time.perf_counter()
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(name, list(r_objects), list(s_objects)),
    ) as pool:
        results = pool.map(_process_chunk, chunks)
    wall = time.perf_counter() - start

    merged = JoinRunStats(method=name)
    touched_r: set[int] = set()
    touched_s: set[int] = set()
    for stats, r_ids, s_ids in results:
        merged = merged.merge(stats)
        touched_r.update(r_ids)
        touched_s.update(s_ids)
    merged.r_objects_total = len(r_objects)
    merged.s_objects_total = len(s_objects)
    merged.r_objects_accessed = len(touched_r)
    merged.s_objects_accessed = len(touched_s)
    return merged, wall


__all__ = ["run_find_relation_parallel"]
