"""Tests for the relate_p predicate filters (Sec. 3.3 / Fig. 6).

Soundness contract: YES/NO verdicts must agree with DE-9IM ground
truth; UNKNOWN is always allowed.
"""

import pytest

from repro.filters.relate_filters import RelateVerdict as V, relate_filter
from repro.geometry import Box, Polygon
from repro.raster import RasterGrid, build_april
from repro.topology import TopologicalRelation as T, relate
from repro.topology.de9im import relation_holds

GRID = RasterGrid(Box(0, 0, 64, 64), order=8)


def verdict(predicate, r, s):
    return relate_filter(predicate, r.bbox, s.bbox, build_april(r, GRID), build_april(s, GRID))


def check_sound(predicate, r, s):
    v = verdict(predicate, r, s)
    if v is V.UNKNOWN:
        return v
    holds = relation_holds(relate(r, s), predicate)
    assert (v is V.YES) == holds, (predicate, v, holds)
    return v


SQUARE = Polygon.box(10, 10, 30, 30)


class TestEquals:
    def test_different_mbrs_no(self):
        assert verdict(T.EQUALS, SQUARE, Polygon.box(10, 10, 31, 30)) is V.NO

    def test_same_raster_unknown(self):
        assert verdict(T.EQUALS, SQUARE, Polygon.box(10, 10, 30, 30)) is V.UNKNOWN

    def test_same_mbr_different_shape_no(self):
        notched = Polygon(
            [(10, 10), (30, 10), (30, 30), (10, 30), (10, 24), (16, 20), (10, 16)]
        )
        assert verdict(T.EQUALS, SQUARE, notched) is V.NO

    @pytest.mark.parametrize(
        "other",
        [Polygon.box(10, 10, 30, 30), Polygon.box(12, 12, 28, 28), Polygon.box(40, 40, 50, 50)],
    )
    def test_soundness(self, other):
        check_sound(T.EQUALS, SQUARE, other)


class TestInsideCoveredBy:
    def test_inside_yes(self):
        assert verdict(T.INSIDE, Polygon.box(15, 15, 25, 25), SQUARE) is V.YES

    def test_inside_not_contained_no(self):
        assert verdict(T.INSIDE, Polygon.box(5, 15, 25, 25), SQUARE) is V.NO

    def test_inside_equal_mbr_no(self):
        assert verdict(T.INSIDE, Polygon.box(10, 10, 30, 30), SQUARE) is V.NO

    def test_inside_touching_mbr_border_no(self):
        # Touch-free inside demands a strictly interior MBR.
        assert verdict(T.INSIDE, Polygon.box(10, 15, 25, 25), SQUARE) is V.NO

    def test_covered_by_touching_border_possible(self):
        v = verdict(T.COVERED_BY, Polygon.box(10, 15, 25, 25), SQUARE)
        assert v in (V.YES, V.UNKNOWN)
        check_sound(T.COVERED_BY, Polygon.box(10, 15, 25, 25), SQUARE)

    def test_covered_by_equal_mbr(self):
        check_sound(T.COVERED_BY, Polygon.box(10, 10, 30, 30), SQUARE)

    def test_soundness_triangle_in_square(self):
        check_sound(T.INSIDE, Polygon([(15, 15), (25, 15), (20, 24)]), SQUARE)


class TestContainsCovers:
    def test_contains_yes(self):
        assert verdict(T.CONTAINS, SQUARE, Polygon.box(15, 15, 25, 25)) is V.YES

    def test_contains_mirrors_inside(self):
        r, s = SQUARE, Polygon.box(15, 15, 25, 25)
        assert verdict(T.CONTAINS, r, s) == verdict(T.INSIDE, s, r)

    def test_covers_mirrors_covered_by(self):
        r, s = SQUARE, Polygon.box(10, 15, 25, 25)
        assert verdict(T.COVERS, r, s) == verdict(T.COVERED_BY, s, r)

    def test_contains_no_when_poking_out(self):
        assert verdict(T.CONTAINS, SQUARE, Polygon.box(25, 25, 35, 35)) is V.NO


class TestMeets:
    def test_disjoint_mbrs_no(self):
        assert verdict(T.MEETS, SQUARE, Polygon.box(40, 40, 50, 50)) is V.NO

    def test_cross_mbrs_no(self):
        tall = Polygon.box(18, 5, 22, 55)
        wide = Polygon.box(5, 18, 55, 22)
        assert verdict(T.MEETS, tall, wide) is V.NO

    def test_interior_overlap_no(self):
        assert verdict(T.MEETS, SQUARE, Polygon.box(20, 20, 40, 40)) is V.NO

    def test_far_apart_in_shared_mbr_region_no(self):
        a = Polygon([(10, 10), (20, 10), (10, 20)])
        b = Polygon([(30, 30), (30, 20), (20, 30)])
        v = verdict(T.MEETS, a, b)
        assert v is V.NO  # C lists do not even overlap

    def test_shared_edge_unknown(self):
        v = verdict(T.MEETS, SQUARE, Polygon.box(30, 10, 50, 30))
        assert v is V.UNKNOWN  # only refinement can confirm a pure touch

    @pytest.mark.parametrize(
        "other",
        [
            Polygon.box(30, 10, 50, 30),
            Polygon.box(29, 10, 50, 30),
            Polygon.box(31, 10, 50, 30),
        ],
    )
    def test_soundness(self, other):
        check_sound(T.MEETS, SQUARE, other)


class TestDisjointIntersects:
    def test_disjoint_mbr_yes(self):
        assert verdict(T.DISJOINT, SQUARE, Polygon.box(40, 40, 50, 50)) is V.YES

    def test_equal_mbr_no(self):
        # Two shapes with the same MBR always intersect.
        assert verdict(T.DISJOINT, SQUARE, Polygon.box(10, 10, 30, 30)) is V.NO

    def test_cross_mbr_no(self):
        tall = Polygon.box(18, 5, 22, 55)
        wide = Polygon.box(5, 18, 55, 22)
        assert verdict(T.DISJOINT, tall, wide) is V.NO

    def test_interior_overlap_no(self):
        assert verdict(T.DISJOINT, SQUARE, Polygon.box(20, 20, 40, 40)) is V.NO

    def test_intersects_is_negation(self):
        pairs = [
            (SQUARE, Polygon.box(40, 40, 50, 50)),
            (SQUARE, Polygon.box(20, 20, 40, 40)),
            (SQUARE, Polygon.box(30, 10, 50, 30)),
        ]
        for r, s in pairs:
            d = verdict(T.DISJOINT, r, s)
            i = verdict(T.INTERSECTS, r, s)
            if d is V.UNKNOWN:
                assert i is V.UNKNOWN
            else:
                assert (d is V.YES) == (i is V.NO)

    @pytest.mark.parametrize(
        "other",
        [
            Polygon.box(40, 40, 50, 50),
            Polygon.box(20, 20, 40, 40),
            Polygon.box(30, 10, 50, 30),
            Polygon([(30, 30), (40, 30), (30, 40)]),
        ],
    )
    def test_soundness_both(self, other):
        check_sound(T.DISJOINT, SQUARE, other)
        check_sound(T.INTERSECTS, SQUARE, other)


class TestAllPredicatesSupported:
    @pytest.mark.parametrize("predicate", list(T))
    def test_runs_for_every_predicate(self, predicate):
        v = verdict(predicate, SQUARE, Polygon.box(15, 15, 25, 25))
        assert v in (V.YES, V.NO, V.UNKNOWN)
        check_sound(predicate, SQUARE, Polygon.box(15, 15, 25, 25))
