"""Table 2 — description of datasets.

Columns mirror the paper: entity type, polygon count, exact-geometry
size, MBR size, and the P+C approximation size on the scenario grid.
Sizes are reported in KiB (the paper uses MB at its far larger scale).
"""

from __future__ import annotations

from repro.datasets.catalog import (
    DATASETS,
    DEFAULT_GRID_ORDER,
    REGION,
    load_dataset,
)
from repro.experiments.common import ExperimentResult
from repro.raster.april import build_april
from repro.raster.grid import RasterGrid


def run_table2(scale: float = 1.0, grid_order: int = DEFAULT_GRID_ORDER) -> ExperimentResult:
    """Regenerate Table 2 for the synthetic dataset catalog."""
    result = ExperimentResult(
        experiment_id="Table 2",
        title="Description of datasets",
        columns=("Dataset", "Entity type", "#polygons", "Size (KiB)", "MBRs (KiB)", "P+C (KiB)"),
    )
    grid = RasterGrid(REGION.expanded(1e-6), order=grid_order)
    for name, (description, _) in DATASETS.items():
        dataset = load_dataset(name, scale)
        approx_bytes = sum(
            build_april(polygon, grid).nbytes for polygon in dataset.polygons
        )
        result.add_row(
            name,
            description,
            dataset.num_polygons,
            dataset.geometry_nbytes / 1024.0,
            dataset.mbr_nbytes / 1024.0,
            approx_bytes / 1024.0,
        )
    result.notes.append(
        f"synthetic analogues at scale={scale}, grid 2^{grid_order} per dimension "
        "(paper: TIGER/OSM at full scale, 2^16 grid)"
    )
    result.notes.append(
        "expected shape: P+C size is a small fraction of exact geometry size"
    )
    return result


__all__ = ["run_table2"]
