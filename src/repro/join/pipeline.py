"""The four evaluated find-relation pipelines and the relate_p pipeline.

Methods (paper Sec. 4):

- **ST2** — standard 2-phase: MBR disjointness test, then a full DE-9IM
  computation checked against all relation masks.
- **OP2** — optimized 2-phase: the enhanced MBR filter of Sec. 3.1
  narrows the candidate relations (and resolves the CROSS case), but
  every surviving pair is still refined.
- **APRIL** — optimized MBR filter + the intersection-only intermediate
  filter of [14]: joins ``rC×sC`` (no overlap ⟹ disjoint, final) and
  ``rC×sP`` / ``rP×sC`` (overlap ⟹ definite intersection — which still
  goes to refinement, because a more specific relation may hold; the
  proven interior intersection only removes disjoint/meets masks).
- **P+C** — the paper's contribution (Algorithm 1): the MBR case
  dispatches to a specialised intermediate filter (Fig. 5) that can
  prove the most specific relation outright.

Every pipeline ends in the same refinement primitive — a DE-9IM matrix
matched against its candidate masks in specific-to-general order — so
differences between methods are purely in how often and with how many
candidates that refinement runs.
"""

from __future__ import annotations

import enum
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.filters.intermediate import (
    IFResult,
    batch_c_overlaps,
    intermediate_filter,
    intermediate_filter_batch,
)
from repro.filters.mbr import MBRRelationship, classify_mbr_pair, mbr_candidates_for
from repro.filters.relate_filters import RelateVerdict, relate_filter
from repro.join.objects import SpatialObject, reset_access_tracking
from repro.join.stats import JoinRunStats
from repro.obs.metrics import Histogram, get_registry, metrics_enabled
from repro.obs.profile import clear_phase, profiling_enabled, set_phase
from repro.obs.progress import progress_reporter
from repro.obs.trace import add_span, trace
from repro.topology.de9im import (
    SPECIFIC_TO_GENERAL,
    TopologicalRelation as T,
    most_specific_relation,
    relation_holds,
)
from repro.topology.relate import relate


class Stage(enum.Enum):
    """Which pipeline stage produced the final relation of a pair."""

    MBR = "mbr"
    INTERMEDIATE = "if"
    REFINEMENT = "refinement"


@dataclass(frozen=True, slots=True)
class FindRelationOutcome:
    """Find-relation answer for one pair plus its provenance."""

    relation: T
    stage: Stage


class Pipeline(ABC):
    """A find-relation method: a filter stage plus shared refinement."""

    #: Method name as used in the paper's plots.
    name: str = "?"
    #: Whether the method requires APRIL approximations.
    uses_april: bool = False

    @abstractmethod
    def filter_pair(
        self, r: SpatialObject, s: SpatialObject
    ) -> tuple[IFResult, Stage]:
        """Run the method's filter stage.

        Returns the filter verdict and the stage a *definite* verdict is
        attributed to (``Stage.MBR`` or ``Stage.INTERMEDIATE``).
        """

    def filter_pairs(
        self,
        r_objects: Sequence[SpatialObject],
        s_objects: Sequence[SpatialObject],
        pairs: Sequence[tuple[int, int]],
    ) -> list[tuple[IFResult, Stage]]:
        """Run the filter stage over a whole candidate stream.

        Semantically identical to mapping :meth:`filter_pair`; APRIL-based
        pipelines override it to amortise the interval merge-joins with
        the batched kernels (:mod:`repro.raster.kernels`).
        """
        return [self.filter_pair(r_objects[i], s_objects[j]) for i, j in pairs]

    def refine_pair(
        self, r: SpatialObject, s: SpatialObject, candidates: Sequence[T]
    ) -> T:
        """Shared refinement: DE-9IM + selective mask matching."""
        matrix = relate(r.access_geometry(), s.access_geometry())
        return most_specific_relation(matrix, candidates)

    def find_relation(self, r: SpatialObject, s: SpatialObject) -> FindRelationOutcome:
        """Most specific topological relation of one candidate pair."""
        verdict, stage = self.filter_pair(r, s)
        if verdict.definite is not None:
            return FindRelationOutcome(verdict.definite, stage)
        assert verdict.refine_candidates is not None
        # Phase marker for callers that drive pairs through this entry
        # point directly (disk-join tiles): without it their refinement
        # samples fold into the surrounding structural span.
        if profiling_enabled():
            set_phase("refine")
            try:
                relation = self.refine_pair(r, s, verdict.refine_candidates)
            finally:
                clear_phase()
        else:
            relation = self.refine_pair(r, s, verdict.refine_candidates)
        return FindRelationOutcome(relation, Stage.REFINEMENT)


class StandardTwoPhasePipeline(Pipeline):
    """ST2: plain MBR test, then refinement against all masks [25, 31]."""

    name = "ST2"

    def filter_pair(self, r: SpatialObject, s: SpatialObject) -> tuple[IFResult, Stage]:
        if r.box.disjoint(s.box):
            return IFResult(definite=T.DISJOINT), Stage.MBR
        return IFResult(refine_candidates=tuple(SPECIFIC_TO_GENERAL)), Stage.MBR


class OptimizedTwoPhasePipeline(Pipeline):
    """OP2: the Sec. 3.1 MBR case analysis narrows the mask set."""

    name = "OP2"

    def filter_pair(self, r: SpatialObject, s: SpatialObject) -> tuple[IFResult, Stage]:
        case = classify_mbr_pair(r.box, s.box)
        connected = r.polygon.is_connected and s.polygon.is_connected
        if case is MBRRelationship.DISJOINT:
            return IFResult(definite=T.DISJOINT), Stage.MBR
        if case is MBRRelationship.CROSS and connected:
            return IFResult(definite=T.INTERSECTS), Stage.MBR
        return IFResult(refine_candidates=mbr_candidates_for(case, connected)), Stage.MBR


class AprilIntersectionPipeline(Pipeline):
    """APRIL [14]: intermediate filter for intersection detection only."""

    name = "APRIL"
    uses_april = True

    def filter_pair(self, r: SpatialObject, s: SpatialObject) -> tuple[IFResult, Stage]:
        case = classify_mbr_pair(r.box, s.box)
        connected = r.polygon.is_connected and s.polygon.is_connected
        if case is MBRRelationship.DISJOINT:
            return IFResult(definite=T.DISJOINT), Stage.MBR
        if case is MBRRelationship.CROSS and connected:
            return IFResult(definite=T.INTERSECTS), Stage.MBR

        ra = r.require_april()
        sa = s.require_april()
        ra.check_compatible(sa)
        if not ra.c.overlaps(sa.c):
            return IFResult(definite=T.DISJOINT), Stage.INTERMEDIATE

        candidates = mbr_candidates_for(case, connected)
        if ra.c.overlaps(sa.p) or ra.p.overlaps(sa.c):
            # Interiors provably intersect: disjoint and meets masks are
            # dead, but the most specific relation is still unknown.
            candidates = tuple(c for c in candidates if c not in (T.DISJOINT, T.MEETS))
        return IFResult(refine_candidates=candidates), Stage.INTERMEDIATE

    def filter_pairs(
        self,
        r_objects: Sequence[SpatialObject],
        s_objects: Sequence[SpatialObject],
        pairs: Sequence[tuple[int, int]],
    ) -> list[tuple[IFResult, Stage]]:
        """Batched form: every surviving pair opens with the ``rC × sC``
        overlap join, so the whole stream is screened in one grouped
        kernel pass before the per-pair tail tests."""
        out: list[tuple[IFResult, Stage] | None] = [None] * len(pairs)
        screened: list[int] = []
        approx: list[tuple] = []
        for k, (i, j) in enumerate(pairs):
            r = r_objects[i]
            s = s_objects[j]
            case = classify_mbr_pair(r.box, s.box)
            connected = r.polygon.is_connected and s.polygon.is_connected
            if case is MBRRelationship.DISJOINT:
                out[k] = (IFResult(definite=T.DISJOINT), Stage.MBR)
                continue
            if case is MBRRelationship.CROSS and connected:
                out[k] = (IFResult(definite=T.INTERSECTS), Stage.MBR)
                continue
            ra = r.require_april()
            sa = s.require_april()
            ra.check_compatible(sa)
            screened.append(k)
            approx.append((ra, sa, case, connected))
        if screened:
            hits = batch_c_overlaps([(ra, sa) for ra, sa, _, _ in approx])
            for hit, k, (ra, sa, case, connected) in zip(hits, screened, approx):
                if not hit:
                    out[k] = (IFResult(definite=T.DISJOINT), Stage.INTERMEDIATE)
                    continue
                candidates = mbr_candidates_for(case, connected)
                if ra.c.overlaps(sa.p) or ra.p.overlaps(sa.c):
                    candidates = tuple(
                        c for c in candidates if c not in (T.DISJOINT, T.MEETS)
                    )
                out[k] = (IFResult(refine_candidates=candidates), Stage.INTERMEDIATE)
        return out  # type: ignore[return-value]


class ProgressiveConservativePipeline(Pipeline):
    """P+C: the paper's Algorithm 1 with the Fig. 5 intermediate filters."""

    name = "P+C"
    uses_april = True

    def filter_pair(self, r: SpatialObject, s: SpatialObject) -> tuple[IFResult, Stage]:
        case = classify_mbr_pair(r.box, s.box)
        connected = r.polygon.is_connected and s.polygon.is_connected
        if case is MBRRelationship.DISJOINT or (
            case is MBRRelationship.CROSS and connected
        ):
            return intermediate_filter(case, None, None), Stage.MBR  # type: ignore[arg-type]
        return (
            intermediate_filter(
                case, r.require_april(), s.require_april(), connected
            ),
            Stage.INTERMEDIATE,
        )

    def filter_pairs(
        self,
        r_objects: Sequence[SpatialObject],
        s_objects: Sequence[SpatialObject],
        pairs: Sequence[tuple[int, int]],
    ) -> list[tuple[IFResult, Stage]]:
        """Batched Algorithm 1: the Fig. 5 dispatch per pair with the
        common ``rC × sC`` disjointness screen amortised over the stream
        (:func:`~repro.filters.intermediate.intermediate_filter_batch`)."""
        items = []
        stages = []
        for i, j in pairs:
            r = r_objects[i]
            s = s_objects[j]
            case = classify_mbr_pair(r.box, s.box)
            connected = r.polygon.is_connected and s.polygon.is_connected
            if case is MBRRelationship.DISJOINT or (
                case is MBRRelationship.CROSS and connected
            ):
                items.append((case, None, None, connected))
                stages.append(Stage.MBR)
            else:
                items.append((case, r.require_april(), s.require_april(), connected))
                stages.append(Stage.INTERMEDIATE)
        return list(zip(intermediate_filter_batch(items), stages))


#: The four evaluated methods, keyed by their paper names.
PIPELINES: dict[str, Pipeline] = {
    p.name: p
    for p in (
        StandardTwoPhasePipeline(),
        OptimizedTwoPhasePipeline(),
        AprilIntersectionPipeline(),
        ProgressiveConservativePipeline(),
    )
}


def _latency_line(hist: Histogram) -> str:
    """The one-line p50/p95 refine-latency summary ``--progress`` emits."""
    return (
        f"refine latency p50={hist.quantile(0.50) * 1e3:.3f}ms "
        f"p95={hist.quantile(0.95) * 1e3:.3f}ms over {hist.count} refined"
    )


def run_find_relation(
    pipeline: Pipeline | str,
    r_objects: Sequence[SpatialObject],
    s_objects: Sequence[SpatialObject],
    pairs: Iterable[tuple[int, int]],
) -> JoinRunStats:
    """Process a candidate-pair stream, timing filter and refine stages.

    ``pairs`` holds indices into the two object lists, as produced by an
    MBR intersection join (:mod:`repro.join.mbr_join`), whose own cost
    is excluded — matching the paper's measurement methodology.
    """
    if isinstance(pipeline, str):
        pipeline = PIPELINES[pipeline]
    stats = JoinRunStats(method=pipeline.name)
    stats.r_objects_total = len(r_objects)
    stats.s_objects_total = len(s_objects)
    reset_access_tracking(r_objects)
    reset_access_tracking(s_objects)

    clock = time.perf_counter
    pairs = list(pairs)
    with trace("run_find_relation", method=pipeline.name, pairs=len(pairs)):
        registry = get_registry() if metrics_enabled() else None
        # MBR cases are re-derived (cheap float compares) only when the
        # per-case verdict counters are actually wanted.
        cases = (
            [
                classify_mbr_pair(r_objects[i].box, s_objects[j].box).value
                for i, j in pairs
            ]
            if registry is not None
            else None
        )
        reporter = progress_reporter(pipeline.name, len(pairs))
        latencies = Histogram() if reporter is not None else None
        # Local bool so the profiler-off path costs one check per
        # refined pair; the markers attribute the per-pair refinement
        # (which runs *between* spans) to the ``refine`` phase.
        profiling = profiling_enabled()

        t0 = clock()
        with trace("filter", pairs=len(pairs)):
            verdicts = pipeline.filter_pairs(r_objects, s_objects, pairs)
        stats.filter_seconds += clock() - t0
        for k, ((i, j), (verdict, stage)) in enumerate(zip(pairs, verdicts)):
            if reporter is not None and (k & 255) == 0:
                reporter.tick(k, detail=f"{stats.refined} refined")
            if verdict.definite is not None:
                stats.record(verdict.definite, stage.value)
                if registry is not None:
                    registry.inc(
                        "repro_verdicts_total",
                        method=pipeline.name,
                        case=cases[k],
                        stage=stage.value,
                        relation=verdict.definite.value,
                    )
                continue
            assert verdict.refine_candidates is not None
            if profiling:
                set_phase("refine")
            t1 = clock()
            relation = pipeline.refine_pair(
                r_objects[i], s_objects[j], verdict.refine_candidates
            )
            elapsed = clock() - t1
            if profiling:
                clear_phase()
            stats.refine_seconds += elapsed
            if latencies is not None:
                latencies.observe(elapsed)
            stats.record(relation, "refinement")
            if registry is not None:
                registry.inc(
                    "repro_verdicts_total",
                    method=pipeline.name,
                    case=cases[k],
                    stage="refinement",
                    relation=relation.value,
                )
                registry.observe(
                    "repro_refine_latency_seconds", elapsed, method=pipeline.name
                )
        # Aggregate of the per-pair refinement sections above, attached
        # with its measured duration so span totals reconcile with
        # ``refine_seconds`` instead of re-timing the loop.
        add_span("refine", stats.refine_seconds, pairs=stats.refined)
        if reporter is not None:
            reporter.finish(detail=f"{stats.refined} refined")
            if latencies is not None and latencies.count:
                reporter.summary(_latency_line(latencies))

    stats.r_objects_accessed = sum(1 for o in r_objects if o.geometry_accessed)
    stats.s_objects_accessed = sum(1 for o in s_objects if o.geometry_accessed)
    return stats


# ----------------------------------------------------------------------
# relate_p (Sec. 3.3)
# ----------------------------------------------------------------------
def relate_predicate(
    predicate: T, r: SpatialObject, s: SpatialObject
) -> tuple[bool, Stage]:
    """Does ``predicate`` hold for the pair? (Fig. 6 filter + fallback.)"""
    connected = r.polygon.is_connected and s.polygon.is_connected
    verdict = relate_filter(
        predicate, r.box, s.box, r.require_april(), s.require_april(), connected
    )
    if verdict is RelateVerdict.YES:
        return True, Stage.INTERMEDIATE
    if verdict is RelateVerdict.NO:
        return False, Stage.INTERMEDIATE
    if profiling_enabled():
        set_phase("refine")
        try:
            matrix = relate(r.access_geometry(), s.access_geometry())
        finally:
            clear_phase()
    else:
        matrix = relate(r.access_geometry(), s.access_geometry())
    return relation_holds(matrix, predicate), Stage.REFINEMENT


def run_relate(
    predicate: T,
    r_objects: Sequence[SpatialObject],
    s_objects: Sequence[SpatialObject],
    pairs: Iterable[tuple[int, int]],
) -> JoinRunStats:
    """Run ``relate_p`` over a candidate-pair stream (Table 5's metric)."""
    stats = JoinRunStats(method=f"relate[{predicate.value}]")
    stats.r_objects_total = len(r_objects)
    stats.s_objects_total = len(s_objects)
    reset_access_tracking(r_objects)
    reset_access_tracking(s_objects)

    clock = time.perf_counter
    pairs = list(pairs)
    with trace("run_relate", predicate=predicate.value, pairs=len(pairs)):
        registry = get_registry() if metrics_enabled() else None
        reporter = progress_reporter(stats.method, len(pairs))
        latencies = Histogram() if reporter is not None else None
        profiling = profiling_enabled()
        for k, (i, j) in enumerate(pairs):
            if reporter is not None and (k & 255) == 0:
                reporter.tick(k, detail=f"{stats.refined} refined")
            r = r_objects[i]
            s = s_objects[j]
            if profiling:
                set_phase("filter")
            t0 = clock()
            verdict = relate_filter(
                predicate, r.box, s.box, r.require_april(), s.require_april(),
                r.polygon.is_connected and s.polygon.is_connected,
            )
            t1 = clock()
            stats.filter_seconds += t1 - t0
            if verdict is not RelateVerdict.UNKNOWN:
                if profiling:
                    clear_phase()
                stats.pairs += 1
                stats.resolved_if += 1
                if verdict is RelateVerdict.YES:
                    stats.relation_counts[predicate] += 1
                if registry is not None:
                    registry.inc(
                        "repro_relate_verdicts_total",
                        predicate=predicate.value,
                        stage="if",
                        verdict=verdict.value,
                    )
                continue
            if profiling:
                set_phase("refine")
            matrix = relate(r.access_geometry(), s.access_geometry())
            holds = relation_holds(matrix, predicate)
            elapsed = clock() - t1
            if profiling:
                clear_phase()
            stats.refine_seconds += elapsed
            if latencies is not None:
                latencies.observe(elapsed)
            stats.pairs += 1
            stats.refined += 1
            if holds:
                stats.relation_counts[predicate] += 1
            if registry is not None:
                registry.inc(
                    "repro_relate_verdicts_total",
                    predicate=predicate.value,
                    stage="refinement",
                    verdict="yes" if holds else "no",
                )
                registry.observe(
                    "repro_refine_latency_seconds", elapsed, method=stats.method
                )
        add_span("filter", stats.filter_seconds, pairs=len(pairs))
        add_span("refine", stats.refine_seconds, pairs=stats.refined)
        if reporter is not None:
            reporter.finish(detail=f"{stats.refined} refined")
            if latencies is not None and latencies.count:
                reporter.summary(_latency_line(latencies))

    stats.r_objects_accessed = sum(1 for o in r_objects if o.geometry_accessed)
    stats.s_objects_accessed = sum(1 for o in s_objects if o.geometry_accessed)
    return stats


__all__ = [
    "AprilIntersectionPipeline",
    "FindRelationOutcome",
    "OptimizedTwoPhasePipeline",
    "PIPELINES",
    "Pipeline",
    "ProgressiveConservativePipeline",
    "Stage",
    "StandardTwoPhasePipeline",
    "relate_predicate",
    "run_find_relation",
    "run_relate",
]
