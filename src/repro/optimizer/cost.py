"""Calibrated per-mode cost model: the brain behind ``mode="auto"``.

Until PR 6, ``mode="auto"`` picked the parallel path whenever the
caller asked for more than one worker — uninformed by whether this
machine can actually *deliver* parallel speedup. ``BENCH_parallel.json``
records the consequence: on a 1-core box the parallel path runs at
0.75× serial, yet auto kept choosing it. Kipf et al. ("Adaptive
Geospatial Joins for Modern Hardware", PAPERS.md) make the case that
strategy escalation must be driven by *measured* cost, and Tsitsigkos &
Mamoulis ("Parallel In-Memory Evaluation of Spatial Joins") show
partition-parallel speedup is a function of cardinality and core count
— the signals this module turns into a decision.

The model is a calibrated linear cost per execution mode::

    cost(mode) = startup(mode) + per_pair(mode) * candidate_pairs
               [+ raster_per_object * (|R| + |S|)   when the cache is cold]

with the parallel per-pair cost rescaled by the effective parallelism
``min(workers, cpu_count)`` relative to the parallelism it was measured
at. Three sources feed the parameters, in increasing authority:

1. **Bench trajectory seed** — :meth:`CalibrationProfile.seed_from_bench`
   reads the recorded ``BENCH_parallel.json`` / ``BENCH_store.json``
   trajectories, so a checkout that has never calibrated still knows
   this box's serial/parallel ratio.
2. **Calibration runs** — ``python -m repro calibrate`` (see
   :mod:`repro.optimizer.calibrate`) measures the machine directly and
   persists a versioned profile; :class:`Engine` discovers it.
3. **Live refresh** — every executed join feeds its observed per-pair
   wall time back through :meth:`CostModel.observe_run` (EWMA), and the
   same observations land in the ``repro_cost_model_pair_seconds``
   histogram so a fresh process can warm the model from exported
   metrics via :meth:`CostModel.refresh_from_registry`.

Profiles are versioned (``PROFILE_VERSION``) and fingerprint the
machine they were measured on; loading a profile calibrated for a
different core count raises :class:`CalibrationError` — the engine then
falls back to the historical workers-based rule rather than trusting a
stale model.

Auto-mode *selection* arbitrates serial vs batch vs parallel (batch
only for P+C find-relation joins, the pipeline it implements; disk
joins the race above a configurable pair threshold). Ties resolve in
candidate order — serial first — so bench-seeded profiles that copy
serial's per-pair cost for batch keep the historical pick. Predicted
costs for every calibrated mode are reported in ``JoinRun.meta`` so
the decision is auditable even for modes it declined to pick.
"""

from __future__ import annotations

import json
import math
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

#: Format version of the persisted calibration profile. Bump on any
#: incompatible schema change; loaders reject foreign versions.
PROFILE_VERSION = 1

#: Environment variable overriding the default profile location. Set it
#: to an empty string to disable profile discovery entirely.
PROFILE_ENV = "REPRO_CALIBRATION"

#: EWMA weight of one live observation against the calibrated value.
_EWMA_ALPHA = 0.2

#: Observations over fewer pairs than this are too startup-dominated to
#: say anything about the per-pair cost; skip the EWMA update.
_MIN_OBSERVED_PAIRS = 64

#: Modes the model can carry parameters for.
MODEL_MODES = ("serial", "batch", "parallel", "disk")


class CalibrationError(ValueError):
    """A calibration profile that cannot be trusted on this machine."""


def default_profile_path() -> Path:
    """Where ``repro calibrate`` persists and the engine discovers the
    machine's profile: ``$REPRO_CALIBRATION`` when set (empty disables
    discovery), else ``~/.cache/repro/calibration.json``."""
    override = os.environ.get(PROFILE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "calibration.json"


def discovery_disabled() -> bool:
    """True when ``$REPRO_CALIBRATION`` is set to the empty string."""
    return os.environ.get(PROFILE_ENV) == ""


@dataclass
class ModeCost:
    """Linear cost parameters of one execution mode."""

    #: Fixed cost per run (pool fork, tile orchestration, dispatch).
    startup: float
    #: Verification cost per candidate pair, seconds.
    per_pair: float
    #: Extra per-object cost (disk partitioning I/O); 0 for in-memory.
    per_object: float = 0.0

    def to_dict(self) -> dict:
        return {
            "startup": self.startup,
            "per_pair": self.per_pair,
            "per_object": self.per_object,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "ModeCost":
        return cls(
            startup=float(d["startup"]),
            per_pair=float(d["per_pair"]),
            per_object=float(d.get("per_object", 0.0)),
        )


@dataclass
class CalibrationProfile:
    """A machine's measured per-mode cost parameters, persistable.

    ``machine`` fingerprints where the numbers were measured
    (``cpu_count`` is load-bearing: parallel costs measured on one core
    count do not transfer to another, so :meth:`load` rejects the
    mismatch). ``measured_workers`` records the worker count the
    parallel mode was measured at; predictions rescale from it.
    """

    modes: dict[str, ModeCost]
    machine: dict = field(default_factory=dict)
    measured_workers: int = 1
    #: Seconds to rasterise one object's APRIL approximation (the cold
    #: path's extra work; warm joins skip it entirely).
    raster_per_object: float = 0.0
    #: Auto considers the out-of-core disk mode only above this many
    #: estimated candidate pairs (``inf`` keeps it opt-in only).
    disk_min_pairs: float = math.inf
    source: str = "calibrate"
    created: str = ""
    #: Raw (mode, pairs, seconds) measurements behind the fit.
    samples: list = field(default_factory=list)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def machine_fingerprint() -> dict:
        return {
            "cpu_count": os.cpu_count() or 1,
            "platform": sys.platform,
            "python": f"{sys.version_info.major}.{sys.version_info.minor}",
        }

    @classmethod
    def seed_from_bench(cls, root: str | Path) -> "CalibrationProfile":
        """A profile seeded from the recorded ``BENCH_*.json`` trajectory.

        Uses the most recent ``find_relation`` entry of
        ``BENCH_parallel.json`` whose ``cpu_count`` matches this machine
        (any entry when none matches) for the serial/parallel per-pair
        costs, and the matching ``preprocess`` entry for the
        rasterisation cost. Raises :class:`CalibrationError` when the
        trajectory holds no usable entry.
        """
        root = Path(root)
        entries = _read_bench(root / "BENCH_parallel.json")
        cpu = os.cpu_count() or 1
        finds = [e for e in entries if e.get("kind") == "find_relation"]
        preps = [e for e in entries if e.get("kind") == "preprocess"]
        local = [e for e in finds if e.get("cpu_count") == cpu]
        pick = (local or finds)[-1] if finds else None
        if pick is None or not pick.get("pairs"):
            raise CalibrationError(
                f"{root}: no usable find_relation entry in BENCH_parallel.json"
            )
        pairs = float(pick["pairs"])
        serial_pp = float(pick["serial_seconds"]) / pairs
        parallel_pp = float(pick["parallel_seconds"]) / pairs
        # Trajectories recorded since the bench timed the batch runner
        # carry ``batch_seconds``; older entries lack it, and the serial
        # cost stands in so predictions stay defined (a tie that auto
        # breaks in serial's favour, preserving the historical pick).
        batch_seconds = pick.get("batch_seconds")
        batch_pp = (
            float(batch_seconds) / pairs if batch_seconds else serial_pp
        )
        raster = 0.0
        local_preps = [e for e in preps if e.get("cpu_count") == cpu] or preps
        if local_preps:
            prep = local_preps[-1]
            if prep.get("polygons"):
                raster = float(prep["serial_seconds"]) / float(prep["polygons"])
        samples = [
            {"mode": "serial", "pairs": pairs, "seconds": pick["serial_seconds"]},
            {"mode": "parallel", "pairs": pairs, "seconds": pick["parallel_seconds"]},
        ]
        if batch_seconds:
            samples.insert(
                1, {"mode": "batch", "pairs": pairs, "seconds": batch_seconds}
            )
        return cls(
            modes={
                "serial": ModeCost(startup=0.0, per_pair=serial_pp),
                "batch": ModeCost(startup=0.0, per_pair=batch_pp),
                "parallel": ModeCost(startup=0.0, per_pair=parallel_pp),
            },
            machine=cls.machine_fingerprint(),
            measured_workers=int(pick.get("workers", 1)),
            raster_per_object=raster,
            source="bench",
            created=time.strftime("%Y-%m-%dT%H:%M:%S"),
            samples=samples,
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "profile_version": PROFILE_VERSION,
            "created": self.created or time.strftime("%Y-%m-%dT%H:%M:%S"),
            "source": self.source,
            "machine": dict(self.machine),
            "measured_workers": self.measured_workers,
            "raster_per_object": self.raster_per_object,
            "disk_min_pairs": (
                None if math.isinf(self.disk_min_pairs) else self.disk_min_pairs
            ),
            "modes": {name: mc.to_dict() for name, mc in self.modes.items()},
            "samples": list(self.samples),
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "CalibrationProfile":
        version = d.get("profile_version")
        if version != PROFILE_VERSION:
            raise CalibrationError(
                f"unsupported calibration profile version {version!r} "
                f"(this build reads version {PROFILE_VERSION}); recalibrate"
            )
        modes = {
            name: ModeCost.from_dict(mc)
            for name, mc in dict(d.get("modes", {})).items()
            if name in MODEL_MODES
        }
        if "serial" not in modes or "parallel" not in modes:
            raise CalibrationError(
                "calibration profile must cover at least serial and parallel"
            )
        disk_min = d.get("disk_min_pairs")
        return cls(
            modes=modes,
            machine=dict(d.get("machine", {})),
            measured_workers=int(d.get("measured_workers", 1)),
            raster_per_object=float(d.get("raster_per_object", 0.0)),
            disk_min_pairs=math.inf if disk_min is None else float(disk_min),
            source=str(d.get("source", "calibrate")),
            created=str(d.get("created", "")),
            samples=list(d.get("samples", [])),
        )

    def save(self, path: str | Path) -> Path:
        """Atomically persist the profile as JSON; returns the path."""
        from repro.resilience.atomic import atomic_write_text

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path, *, allow_stale: bool = False) -> "CalibrationProfile":
        """Load and validate a persisted profile.

        Raises :class:`CalibrationError` on a foreign format version or
        — unless ``allow_stale`` — on a ``cpu_count`` fingerprint that
        no longer matches this machine (parallel costs do not transfer
        across core counts).
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise CalibrationError(f"{path}: corrupt calibration profile: {exc}") from exc
        profile = cls.from_dict(payload)
        recorded = profile.machine.get("cpu_count")
        current = os.cpu_count() or 1
        if not allow_stale and recorded not in (None, current):
            raise CalibrationError(
                f"{path}: profile was calibrated for cpu_count={recorded}, "
                f"this machine has {current}; run `python -m repro calibrate`"
            )
        return profile


def _read_bench(path: Path) -> list[dict]:
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return []
    return data if isinstance(data, list) else []


# ----------------------------------------------------------------------
# features and decisions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JoinFeatures:
    """Everything the model looks at for one join request."""

    r_count: int
    s_count: int
    #: Candidate-pair cardinality: exact at the execute level, a
    #: selectivity-histogram estimate at the join level.
    pairs: float
    #: Resolved effective worker request (never ``None``).
    workers: int
    cpu_count: int
    #: True when APRIL approximations are already available (attached
    #: object cache or persisted payload) — the cold path adds
    #: rasterisation cost on top of verification.
    warm: bool = True
    #: False for pipelines that never touch APRIL (ST2/OP2 without a
    #: predicate): rasterisation cost is irrelevant either way.
    needs_april: bool = True

    def to_dict(self) -> dict:
        return {
            "r_count": self.r_count,
            "s_count": self.s_count,
            "pairs": round(float(self.pairs), 1),
            "workers": self.workers,
            "cpu_count": self.cpu_count,
            "warm": self.warm,
            "needs_april": self.needs_april,
        }


@dataclass(frozen=True)
class Decision:
    """One auto-mode verdict, with its full prediction table."""

    mode: str
    #: ``"calibration"`` when a model decided, ``"fallback"`` for the
    #: historical workers-based rule.
    source: str
    predicted: dict[str, float] = field(default_factory=dict)
    features: JoinFeatures | None = None

    def to_meta(self) -> dict:
        meta = {"requested": "auto", "decision": self.mode, "source": self.source}
        if self.predicted:
            meta["predicted_seconds"] = {
                m: round(t, 6) for m, t in sorted(self.predicted.items())
            }
        if self.features is not None:
            meta["features"] = self.features.to_dict()
        return meta


def fallback_decision(workers: int) -> Decision:
    """The historical uninformed rule: parallel iff ``workers > 1``.

    ``workers`` must already be resolved (``None`` → ``default_workers()``
    happens at the caller), so a 1-CPU machine whose default resolves to
    one worker lands on serial instead of a 1-worker parallel pool.
    """
    return Decision(mode="parallel" if workers > 1 else "serial", source="fallback")


# ----------------------------------------------------------------------
# the model
# ----------------------------------------------------------------------
class CostModel:
    """Predicts per-mode wall time and picks the cheapest viable mode."""

    def __init__(self, profile: CalibrationProfile) -> None:
        self.profile = profile

    # -- prediction ----------------------------------------------------
    def _effective_parallelism(self, workers: int, cpu_count: int) -> float:
        return float(max(1, min(workers, max(1, cpu_count))))

    def predict(self, mode: str, f: JoinFeatures) -> float:
        """Predicted wall seconds of running ``f`` under ``mode``."""
        mc = self.profile.modes.get(mode)
        if mc is None:
            raise KeyError(f"profile has no calibration for mode {mode!r}")
        pairs = max(0.0, float(f.pairs))
        objects = f.r_count + f.s_count
        per_pair = mc.per_pair
        if mode == "parallel":
            measured_eff = self._effective_parallelism(
                self.profile.measured_workers,
                int(self.profile.machine.get("cpu_count", f.cpu_count)),
            )
            eff = self._effective_parallelism(f.workers, f.cpu_count)
            per_pair = mc.per_pair * measured_eff / eff
        cost = mc.startup + per_pair * pairs + mc.per_object * objects
        if f.needs_april and not f.warm and mode != "disk":
            build = self.profile.raster_per_object * objects
            if mode == "parallel":
                build /= self._effective_parallelism(f.workers, f.cpu_count)
            cost += build
        return cost

    def predictions(self, f: JoinFeatures) -> dict[str, float]:
        """The full prediction table over every calibrated mode."""
        return {mode: self.predict(mode, f) for mode in self.profile.modes}

    # -- decision ------------------------------------------------------
    def decide(
        self, f: JoinFeatures, candidates: Sequence[str] = ("serial", "parallel")
    ) -> Decision:
        """The cheapest predicted mode among ``candidates``.

        Ties break toward the earlier candidate (serial before
        parallel, so a 1-worker request can never land on a parallel
        pool of one). Candidates without calibration data are skipped;
        if none remain, the workers-based fallback decides. The disk
        candidate is additionally gated on the profile's
        ``disk_min_pairs`` threshold — out-of-core execution is an
        escape hatch for joins too large for memory, not a latency play.
        """
        viable = []
        for mode in candidates:
            if mode not in self.profile.modes:
                continue
            if mode == "disk" and f.pairs < self.profile.disk_min_pairs:
                continue
            viable.append(mode)
        if not viable:
            return fallback_decision(f.workers)
        predicted = self.predictions(f)
        best = min(viable, key=lambda m: (predicted[m], viable.index(m)))
        return Decision(
            mode=best, source="calibration", predicted=predicted, features=f
        )

    # -- live refresh --------------------------------------------------
    def observe_run(self, mode: str, f: JoinFeatures, wall_seconds: float) -> None:
        """Fold one executed join back into the model (EWMA) and into
        the live obs histograms.

        The observed per-pair cost (wall time net of the calibrated
        startup, divided by pairs) nudges the mode's ``per_pair``
        toward reality, so a model seeded from a stale trajectory
        converges over a session. Runs with too few pairs are recorded
        in the histograms but skipped by the EWMA — their wall time is
        all startup.
        """
        from repro.obs.metrics import get_registry, metrics_enabled

        mc = self.profile.modes.get(mode)
        pairs = float(f.pairs)
        if metrics_enabled():
            registry = get_registry()
            registry.observe("repro_cost_model_wall_seconds", wall_seconds, mode=mode)
            if pairs > 0:
                registry.observe(
                    "repro_cost_model_pair_seconds", wall_seconds / pairs, mode=mode
                )
        if mc is None or pairs < _MIN_OBSERVED_PAIRS:
            return
        observed = max(0.0, wall_seconds - mc.startup) / pairs
        if mode == "parallel":
            # Normalise back to the parallelism the profile was
            # measured at, the frame per_pair is stored in.
            measured_eff = self._effective_parallelism(
                self.profile.measured_workers,
                int(self.profile.machine.get("cpu_count", f.cpu_count)),
            )
            eff = self._effective_parallelism(f.workers, f.cpu_count)
            observed = observed * eff / measured_eff
        if observed > 0.0:
            mc.per_pair = (1.0 - _EWMA_ALPHA) * mc.per_pair + _EWMA_ALPHA * observed

    def refresh_from_registry(self, registry) -> int:
        """Warm the model from ``repro_cost_model_pair_seconds``
        histograms of an exported metrics registry (e.g. a previous
        process's run). Returns the number of modes refreshed."""
        refreshed = 0
        for (name, labels), histogram in getattr(registry, "histograms", {}).items():
            if name != "repro_cost_model_pair_seconds" or histogram.count == 0:
                continue
            mode = dict(labels).get("mode")
            mc = self.profile.modes.get(mode)
            if mc is None:
                continue
            mean = histogram.sum / histogram.count
            if mean > 0.0:
                mc.per_pair = (1.0 - _EWMA_ALPHA) * mc.per_pair + _EWMA_ALPHA * mean
                refreshed += 1
        return refreshed


def load_cost_model(path: str | Path | None = None) -> CostModel | None:
    """Discover the machine's cost model, or ``None``.

    With an explicit ``path`` the profile *must* load (errors
    propagate). Without one, the default location is tried and every
    failure — absent file, foreign version, stale machine fingerprint,
    disabled discovery — quietly yields ``None`` so callers fall back
    to the uncalibrated rule.
    """
    if path is not None:
        return CostModel(CalibrationProfile.load(path))
    if discovery_disabled():
        return None
    default = default_profile_path()
    if not default.exists():
        return None
    try:
        return CostModel(CalibrationProfile.load(default))
    except (CalibrationError, OSError):
        return None


__all__ = [
    "CalibrationError",
    "CalibrationProfile",
    "CostModel",
    "Decision",
    "JoinFeatures",
    "ModeCost",
    "MODEL_MODES",
    "PROFILE_ENV",
    "PROFILE_VERSION",
    "default_profile_path",
    "fallback_decision",
    "load_cost_model",
]
