"""Table 2/3 benchmarks: preprocessing and the MBR filter step.

Times APRIL construction per entity class (Table 2's P+C column is its
space cost; this is its time cost) and the MBR intersection joins that
produce Table 3's candidate streams.
"""

import pytest

from repro.datasets import load_dataset
from repro.join.mbr_join import grid_partitioned_mbr_join, plane_sweep_mbr_join
from repro.raster import RasterGrid, build_april
from repro.datasets.catalog import REGION

GRID = RasterGrid(REGION.expanded(1e-6), order=10)


@pytest.mark.parametrize("dataset", ("TL", "OBE", "OLE", "OPE"))
def test_table2_april_construction(benchmark, dataset):
    polygons = load_dataset(dataset, scale=0.2).polygons[:40]

    def build_all():
        return [build_april(p, GRID) for p in polygons]

    approx = benchmark(build_all)
    benchmark.extra_info["polygons"] = len(polygons)
    benchmark.extra_info["total_intervals"] = sum(len(a.p) + len(a.c) for a in approx)


@pytest.mark.parametrize("algorithm", ("sweep", "grid"))
def test_table3_mbr_join(benchmark, algorithm):
    r_boxes = [p.bbox for p in load_dataset("OLE", scale=0.5).polygons]
    s_boxes = [p.bbox for p in load_dataset("OPE", scale=0.5).polygons]
    join = plane_sweep_mbr_join if algorithm == "sweep" else grid_partitioned_mbr_join
    pairs = benchmark(join, r_boxes, s_boxes)
    benchmark.extra_info["pairs"] = len(pairs)
