"""Command-line entry point for the experiment harness.

Examples::

    python -m repro.experiments all
    python -m repro.experiments fig7a fig7b --scale 0.5
    python -m repro.experiments table5 --grid-order 12 --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

from repro.datasets.catalog import DEFAULT_GRID_ORDER
from repro.experiments.ablation import run_ablation_grid
from repro.experiments.ablation_simplify import run_ablation_simplify
from repro.experiments.common import ExperimentResult
from repro.experiments.fig7 import run_fig7a, run_fig7b
from repro.experiments.fig8 import run_fig8a, run_fig8b, run_table4
from repro.experiments.fig9 import run_fig9
from repro.experiments.interlink_quality import run_interlink_quality
from repro.experiments.progressive import run_progressive
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table5 import run_table5

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table2": run_table2,
    "table3": run_table3,
    "fig7a": run_fig7a,
    "fig7b": run_fig7b,
    "table4": run_table4,
    "fig8a": run_fig8a,
    "fig8b": run_fig8b,
    "fig9": run_fig9,
    "table5": run_table5,
    "ablation-grid": run_ablation_grid,
    "ablation-simplify": run_ablation_simplify,
    "progressive": run_progressive,
    "interlink-quality": run_interlink_quality,
}

#: Figure experiments also get an ASCII bar rendering of this column.
BAR_COLUMNS = {
    "fig7a": "P+C",
    "fig7b": "P+C",
    "fig8a": "P+C undetermined %",
    "fig8b": "OP2-REF",
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on synthetic data.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=list(EXPERIMENTS) + ["all"],
        help="which experiments to run ('all' runs every one)",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale factor")
    parser.add_argument(
        "--grid-order", type=int, default=DEFAULT_GRID_ORDER,
        help="Hilbert grid order k (2^k cells per dimension)",
    )
    parser.add_argument("--json", type=str, default=None, help="also dump results to a JSON file")
    parser.add_argument(
        "--run-log", type=str, default=None, metavar="PATH",
        help="append one structured JSONL run report per experiment "
             "(same envelope the join CLI's --run-log writes)",
    )
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    results: list[ExperimentResult] = []
    for name in names:
        runner = EXPERIMENTS[name]
        result = runner(scale=args.scale, grid_order=args.grid_order)
        results.append(result)
        if args.run_log:
            from repro.obs.report import RunReport, append_jsonl

            report = RunReport(
                kind="experiment",
                method=name,
                meta={
                    "scale": args.scale,
                    "grid_order": args.grid_order,
                    "result": result.as_dict(),
                },
            )
            append_jsonl(args.run_log, report.to_dict())
        print(result.render())
        bar_column = BAR_COLUMNS.get(name)
        if bar_column and result.rows:
            print()
            print(result.render_bars(bar_column))
        print()

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump([r.as_dict() for r in results], fh, indent=2, default=str)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
