"""Counters and fixed-log-bucket histograms with JSON/Prometheus export.

The quantities the paper aggregates per run (verdicts per MBR case,
interval-list lengths, refinement latency, pairs per worker/tile) are
exactly the ones worth watching per *deployment*: the same counters and
distributions, labelled, mergeable across workers, and exportable both
as JSON (for the run reports) and in the Prometheus text exposition
format (for scrapers).

Histograms use fixed base-2 log buckets: an observation ``v`` falls in
bucket ``e = floor(log2 v)`` (clamped to ±64), i.e. the half-open range
``[2**e, 2**(e+1))``. ``math.frexp`` finds the bucket in constant time,
the bucket set never depends on the data, and merging two histograms is
a sparse per-exponent sum — which is what makes per-worker registries
from a forked pool combinable into exactly the serial run's registry
(timings aside, counts are deterministic).

Zero and negative observations land in a dedicated underflow bucket so
``count`` and ``sum`` stay exact.

Like :mod:`repro.obs.trace`, the module is import-cycle free (stdlib
only), off by default, and fork-friendly: a worker calls
:func:`begin_worker_capture` to record into a fresh registry and ships
it back through the result pipe (everything here pickles).
"""

from __future__ import annotations

import math
import re
from typing import Any

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "begin_worker_capture",
    "get_registry",
    "metrics_enabled",
    "parse_prometheus",
    "reset_metrics",
    "set_metrics",
]

#: Exponent clamp: 2**-64 ≈ 5e-20 s … 2**64 ≈ 1.8e19 covers every
#: latency, length and count this system can produce.
_EXP_MIN = -64
_EXP_MAX = 64
#: Sentinel bucket for observations <= 0 (never produced by frexp).
_UNDERFLOW = _EXP_MIN - 1

LabelKey = tuple[tuple[str, str], ...]


def _bucket_of(value: float) -> int:
    if value <= 0.0:
        return _UNDERFLOW
    _, e = math.frexp(value)  # value = m * 2**e with 0.5 <= m < 1
    return min(_EXP_MAX, max(_EXP_MIN, e - 1))


class Histogram:
    """Sparse fixed-log-bucket histogram (base 2)."""

    __slots__ = ("buckets", "count", "sum")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        e = _bucket_of(value)
        self.buckets[e] = self.buckets.get(e, 0) + 1
        self.count += 1
        self.sum += value

    def merge(self, other: "Histogram") -> None:
        for e, n in other.buckets.items():
            self.buckets[e] = self.buckets.get(e, 0) + n
        self.count += other.count
        self.sum += other.sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile via log-linear bucket interpolation.

        The rank lands in some bucket ``[2**e, 2**(e+1))``; within it
        the mass is assumed uniform in *log space* (the same geometric
        model the bucketing itself uses), so the estimate is
        ``2**(e + frac)`` where ``frac`` is the rank's position inside
        the bucket. Exact at bucket boundaries, at most a factor-of-2
        off inside one — matching the histogram's resolution. Underflow
        observations (``<= 0``) estimate as ``0.0``. Returns ``0.0``
        for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for e in sorted(self.buckets):
            n = self.buckets[e]
            running += n
            if running >= target:
                if e == _UNDERFLOW:
                    return 0.0
                frac = 1.0 - (running - target) / n
                return 2.0 ** (e + frac)
        # Unreachable (running == count >= target), defensive bound.
        top = max(self.buckets)
        return 0.0 if top == _UNDERFLOW else 2.0 ** (top + 1)

    def quantiles(self) -> dict[str, float]:
        """The standard derived quantiles exported everywhere: p50/p90/p99."""
        return {
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def to_dict(self) -> dict[str, Any]:
        # Bucket keys as the upper bound of each half-open range.
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                ("0" if e == _UNDERFLOW else repr(2.0 ** (e + 1))): n
                for e, n in sorted(self.buckets.items())
            },
            "quantiles": self.quantiles(),
        }

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, Prometheus-style."""
        out: list[tuple[float, int]] = []
        running = 0
        for e in sorted(self.buckets):
            running += self.buckets[e]
            bound = 0.0 if e == _UNDERFLOW else 2.0 ** (e + 1)
            out.append((bound, running))
        return out


_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    name = _NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    escaped = (
        (k, v.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n"))
        for k, v in key
    )
    return "{" + ",".join(f'{k}="{v}"' for k, v in escaped) + "}"


class MetricsRegistry:
    """Labelled counters and histograms for one run (or one worker)."""

    def __init__(self) -> None:
        self.counters: dict[tuple[str, LabelKey], int] = {}
        self.histograms: dict[tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value: int = 1, **labels: Any) -> None:
        key = (name, _label_key(labels))
        self.counters[key] = self.counters.get(key, 0) + value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = (name, _label_key(labels))
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram()
        hist.observe(value)

    def merge(self, *others: "MetricsRegistry") -> "MetricsRegistry":
        """Fold other registries (e.g. per-worker ones) into this one."""
        for other in others:
            for key, value in other.counters.items():
                self.counters[key] = self.counters.get(key, 0) + value
            for key, hist in other.histograms.items():
                mine = self.histograms.get(key)
                if mine is None:
                    mine = self.histograms[key] = Histogram()
                mine.merge(hist)
        return self

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def counter_values(self) -> dict[str, int]:
        """Flat ``name{labels} -> value`` view (deterministic order)."""
        return {
            _sanitize(name) + _format_labels(key): value
            for (name, key), value in sorted(self.counters.items())
        }

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe export of every counter and histogram."""
        return {
            "counters": [
                {"name": _sanitize(name), "labels": dict(key), "value": value}
                for (name, key), value in sorted(self.counters.items())
            ],
            "histograms": [
                {"name": _sanitize(name), "labels": dict(key), **hist.to_dict()}
                for (name, key), hist in sorted(self.histograms.items())
            ],
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        seen_types: set[str] = set()
        for (name, key), value in sorted(self.counters.items()):
            name = _sanitize(name)
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{_format_labels(key)} {value}")
        for (name, key), hist in sorted(self.histograms.items()):
            name = _sanitize(name)
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} histogram")
            for bound, cumulative in hist.cumulative():
                bucket_key = key + (("le", repr(bound)),)
                lines.append(f"{name}_bucket{_format_labels(bucket_key)} {cumulative}")
            inf_key = key + (("le", "+Inf"),)
            lines.append(f"{name}_bucket{_format_labels(inf_key)} {hist.count}")
            lines.append(f"{name}_sum{_format_labels(key)} {hist.sum!r}")
            lines.append(f"{name}_count{_format_labels(key)} {hist.count}")
        # Derived quantiles ride in a sibling ``{name}_summary`` family
        # (one TYPE per metric name is a format invariant, so the
        # summary lines cannot share the histogram's family) — emitted
        # after all histograms to keep each family's samples contiguous.
        for (name, key), hist in sorted(self.histograms.items()):
            name = _sanitize(name) + "_summary"
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} summary")
            for q_label, q in (("0.5", 0.50), ("0.9", 0.90), ("0.99", 0.99)):
                q_key = key + (("quantile", q_label),)
                lines.append(f"{name}{_format_labels(q_key)} {hist.quantile(q)!r}")
            lines.append(f"{name}_sum{_format_labels(key)} {hist.sum!r}")
            lines.append(f"{name}_count{_format_labels(key)} {hist.count}")
        return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse a text exposition back into ``name{labels} -> value``.

    A deliberately strict round-trip parser: any non-comment line that
    does not match the sample grammar raises, which is exactly what the
    export tests need to certify the format.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"invalid exposition line: {line!r}")
        labels: list[tuple[str, str]] = []
        if m.group("labels"):
            consumed = _LABEL_RE.sub("", m.group("labels")).replace(",", "").strip()
            if consumed:
                raise ValueError(f"invalid label set in line: {line!r}")
            labels = [
                (lm.group("key"), lm.group("value"))
                for lm in _LABEL_RE.finditer(m.group("labels"))
            ]
        rendered = m.group("name") + _format_labels(tuple(labels))
        samples[rendered] = float(m.group("value"))
    return samples


_ENABLED = False
_REGISTRY = MetricsRegistry()


def set_metrics(enabled: bool) -> None:
    """Turn metric recording on or off (module-wide)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def metrics_enabled() -> bool:
    return _ENABLED


def get_registry() -> MetricsRegistry:
    """The process-wide registry instrumented code records into."""
    return _REGISTRY


def reset_metrics() -> None:
    """Drop all recorded metrics (the enabled flag is unchanged)."""
    global _REGISTRY
    _REGISTRY = MetricsRegistry()


def begin_worker_capture() -> None:
    """Record into a fresh registry in a forked worker (see trace)."""
    reset_metrics()
