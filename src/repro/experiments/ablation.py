"""Ablation: grid-order sensitivity of the P+C intermediate filter.

The paper fixes the grid at 2^16 cells per dimension and notes that the
fine grid is what gives even modest objects a useful Progressive list
(Sec. 4.3, Fig. 9 discussion). This ablation quantifies the trade-off
on the OLE-OPE analogue across grid orders: a coarser grid shrinks the
approximations but starves the filters of full cells (undetermined %
rises); a finer grid costs more preprocessing time and space while the
effectiveness saturates.
"""

from __future__ import annotations

import time

from repro.datasets.catalog import load_scenario
from repro.experiments.common import ExperimentResult
from repro.join.pipeline import run_find_relation

DEFAULT_ORDERS = (8, 9, 10, 11, 12)


def run_ablation_grid(
    scale: float = 1.0,
    grid_order: int = 0,  # unused; present for harness signature parity
    scenario: str = "OLE-OPE",
    orders: tuple[int, ...] = DEFAULT_ORDERS,
) -> ExperimentResult:
    """P+C effectiveness/size/preprocessing cost across grid orders."""
    result = ExperimentResult(
        experiment_id="Ablation",
        title=f"grid-order sensitivity of P+C ({scenario})",
        columns=(
            "Grid order",
            "P+C undetermined %",
            "Throughput (pairs/s)",
            "Approx size (KiB)",
            "Preprocess (s)",
        ),
    )
    for order in orders:
        load_scenario.cache_clear()
        start = time.perf_counter()
        data = load_scenario(scenario, scale, order)
        preprocess_seconds = time.perf_counter() - start
        stats = run_find_relation("P+C", data.r_objects, data.s_objects, data.pairs)
        approx_bytes = sum(
            o.require_april().nbytes for o in data.r_objects + data.s_objects
        )
        result.add_row(
            order,
            stats.undetermined_pct,
            stats.throughput,
            approx_bytes / 1024.0,
            preprocess_seconds,
        )
    result.notes.append(
        "expected shape: undetermined % falls as the grid refines, approximation "
        "size and preprocessing time rise; effectiveness saturates once typical "
        "objects span many cells"
    )
    return result


__all__ = ["run_ablation_grid"]
