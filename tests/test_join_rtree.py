"""Tests for the STR-packed R-tree."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Box
from repro.join.mbr_join import brute_force_mbr_join
from repro.join.rtree import RTree


def boxes_strategy(max_size=60):
    return st.lists(
        st.builds(
            lambda x, y, w, h: Box(x, y, x + w, y + h),
            st.integers(0, 80),
            st.integers(0, 80),
            st.integers(0, 20),
            st.integers(0, 20),
        ),
        max_size=max_size,
    )


def grid_boxes(n_side, size=2, gap=3):
    return [
        Box(i * (size + gap), j * (size + gap), i * (size + gap) + size, j * (size + gap) + size)
        for i in range(n_side)
        for j in range(n_side)
    ]


class TestConstruction:
    def test_empty(self):
        tree = RTree([])
        assert tree.size == 0
        assert tree.height() == 0
        assert tree.query(Box(0, 0, 100, 100)) == []
        assert tree.nearest_mbr(0, 0) is None

    def test_single(self):
        tree = RTree([Box(1, 1, 2, 2)])
        assert tree.height() == 1
        assert tree.query(Box(0, 0, 3, 3)) == [0]

    def test_bad_fanout(self):
        with pytest.raises(ValueError):
            RTree([Box(0, 0, 1, 1)], fanout=1)

    def test_height_grows_logarithmically(self):
        tree = RTree(grid_boxes(20), fanout=8)  # 400 boxes
        # STR packing is not perfectly tight, but the height must stay
        # logarithmic: 400 entries at fanout 8 needs >= 3 levels and a
        # packed build should not need more than 5.
        assert 3 <= tree.height() <= 5

    def test_iter_boxes_covers_all(self):
        boxes = grid_boxes(7)
        tree = RTree(boxes)
        seen = {idx for _, idx in tree.iter_boxes()}
        assert seen == set(range(len(boxes)))


class TestQuery:
    def test_window_hits(self):
        boxes = grid_boxes(10, size=2, gap=3)  # cells at 0,5,10,...
        tree = RTree(boxes)
        got = sorted(tree.query(Box(0, 0, 7, 7)))
        want = sorted(
            i for i, b in enumerate(boxes) if b.intersects(Box(0, 0, 7, 7))
        )
        assert got == want

    def test_window_miss(self):
        tree = RTree(grid_boxes(5))
        assert tree.query(Box(1000, 1000, 1001, 1001)) == []

    def test_query_contained_in(self):
        boxes = grid_boxes(6)
        tree = RTree(boxes)
        window = Box(0, 0, 12, 12)
        got = sorted(tree.query_contained_in(window))
        want = sorted(i for i, b in enumerate(boxes) if window.contains_box(b))
        assert got == want
        assert got  # non-trivial

    @given(boxes_strategy(), st.tuples(st.integers(0, 80), st.integers(0, 80),
                                       st.integers(1, 30), st.integers(1, 30)))
    @settings(max_examples=120)
    def test_query_matches_bruteforce(self, boxes, window_spec):
        x, y, w, h = window_spec
        window = Box(x, y, x + w, y + h)
        tree = RTree(boxes, fanout=4)
        got = sorted(tree.query(window))
        want = sorted(i for i, b in enumerate(boxes) if b.intersects(window))
        assert got == want


class TestJoin:
    @given(boxes_strategy(40), boxes_strategy(40))
    @settings(max_examples=80)
    def test_join_matches_bruteforce(self, r, s):
        got = sorted(RTree(r, fanout=4).join(RTree(s, fanout=4)))
        assert got == sorted(brute_force_mbr_join(r, s))

    def test_join_empty(self):
        assert RTree([]).join(RTree([Box(0, 0, 1, 1)])) == []
        assert RTree([Box(0, 0, 1, 1)]).join(RTree([])) == []

    def test_join_agrees_with_sweep_on_scenario(self):
        from repro.datasets import load_dataset
        from repro.join.mbr_join import plane_sweep_mbr_join

        r = [p.bbox for p in load_dataset("OLE", 0.2).polygons]
        s = [p.bbox for p in load_dataset("OPE", 0.2).polygons]
        assert sorted(RTree(r).join(RTree(s))) == sorted(plane_sweep_mbr_join(r, s))


class TestNearest:
    def test_point_inside_a_box(self):
        boxes = grid_boxes(4)
        tree = RTree(boxes)
        assert tree.nearest_mbr(1.0, 1.0) == 0

    def test_nearest_between_boxes(self):
        boxes = [Box(0, 0, 1, 1), Box(10, 0, 11, 1)]
        tree = RTree(boxes)
        assert tree.nearest_mbr(3, 0.5) == 0
        assert tree.nearest_mbr(8, 0.5) == 1

    @given(boxes_strategy(30), st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=80)
    def test_nearest_matches_bruteforce_distance(self, boxes, x, y):
        if not boxes:
            return
        tree = RTree(boxes, fanout=4)
        got = tree.nearest_mbr(x, y)

        def dist(b):
            dx = max(b.xmin - x, 0, x - b.xmax)
            dy = max(b.ymin - y, 0, y - b.ymax)
            return math.hypot(dx, dy)

        assert got is not None
        assert dist(boxes[got]) == min(dist(b) for b in boxes)
