"""Supervised-pool overhead and recovery benchmark.

The fault-tolerant executor replaced the bare ``pool.map`` fan-out with
per-partition supervision (deadlines, start-acks, retry bookkeeping).
This benchmark certifies that supervision is free when nothing fails:
the parallel/serial wall-clock ratio of a clean run must stay within
the acceptance bound of the comparable ``BENCH_parallel.json`` entries
— the trajectory recorded *by the unsupervised executor* before this
layer existed (compared only against entries with the same
``cpu_count``; absolute timings do not transfer between machines, but
the parallel/serial ratio of one process does).

A second measurement runs the same workload under a crash-every-first
-attempt failpoint schedule and records the bounded recovery cost.
Every run appends both to the ``BENCH_resilience.json`` trajectory.
"""

import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro.datasets import load_scenario
from repro.join.pipeline import run_find_relation
from repro.parallel import run_find_relation_parallel
from repro.resilience import failpoints

SCENARIO = "OBE-OPE"
SCALE = 5.0
GRID_ORDER = 10
WORKERS = 4
ROUNDS = 2

#: Acceptance bound for the supervised no-fault parallel/serial ratio
#: vs the median comparable pre-supervision entry.
NO_FAULT_REGRESSION_PCT = 5.0

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_resilience.json"
BASELINE_PATH = REPO_ROOT / "BENCH_parallel.json"


def record(entry: dict) -> None:
    from conftest import record_entry

    record_entry(BENCH_PATH, entry)


def comparable_baseline_ratios() -> list[float]:
    """parallel/serial ratios of comparable ``BENCH_parallel`` entries."""
    if not BASELINE_PATH.exists():
        return []
    return [
        e["parallel_seconds"] / e["serial_seconds"]
        for e in json.loads(BASELINE_PATH.read_text())
        if e.get("kind") == "find_relation"
        and e.get("scenario") == SCENARIO
        and e.get("scale") == SCALE
        and e.get("grid_order") == GRID_ORDER
        and e.get("workers") == WORKERS
        and e.get("cpu_count") == os.cpu_count()
        and e.get("serial_seconds")
    ]


@pytest.fixture(scope="module")
def scenario():
    data = load_scenario(SCENARIO, scale=SCALE, grid_order=GRID_ORDER)
    assert len(data.pairs) >= 5000, "benchmark needs a >=5k-pair stream"
    return data


def _timed_parallel(scenario):
    best, run = float("inf"), None
    for _ in range(ROUNDS):
        run = run_find_relation_parallel(
            "P+C", scenario.r_objects, scenario.s_objects, scenario.pairs,
            workers=WORKERS,
        )
        best = min(best, run.wall_seconds)
    return best, run


def test_supervised_no_fault_overhead(scenario):
    failpoints.disarm_all()
    serial_seconds = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        serial = run_find_relation(
            "P+C", scenario.r_objects, scenario.s_objects, scenario.pairs
        )
        serial_seconds = min(serial_seconds, time.perf_counter() - t0)

    parallel_seconds, run = _timed_parallel(scenario)

    # Supervision never changes results, and a fault-free run is clean.
    assert run.stats.relation_counts == serial.relation_counts
    assert run.stats.pairs == serial.pairs == len(scenario.pairs)
    assert run.supervision.clean

    ratio = parallel_seconds / serial_seconds
    baselines = comparable_baseline_ratios()
    baseline_ratio = statistics.median(baselines) if baselines else None
    regression_pct = (
        100.0 * (ratio / baseline_ratio - 1.0) if baseline_ratio else None
    )

    record(
        {
            "kind": "supervised_no_fault",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "scenario": SCENARIO,
            "scale": SCALE,
            "grid_order": GRID_ORDER,
            "pairs": len(scenario.pairs),
            "workers": WORKERS,
            "cpu_count": os.cpu_count(),
            "serial_seconds": round(serial_seconds, 4),
            "parallel_seconds": round(parallel_seconds, 4),
            "ratio": round(ratio, 4),
            "baseline_ratio": round(baseline_ratio, 4) if baseline_ratio else None,
            "regression_pct": round(regression_pct, 2)
            if regression_pct is not None
            else None,
        }
    )

    if baseline_ratio is not None:
        assert regression_pct < NO_FAULT_REGRESSION_PCT, (
            f"supervised no-fault ratio {ratio:.3f} regresses "
            f"{regression_pct:.1f}% vs median pre-supervision ratio "
            f"{baseline_ratio:.3f} (bound {NO_FAULT_REGRESSION_PCT}%)"
        )


def test_recovery_cost_is_bounded(scenario):
    clean_seconds, clean = _timed_parallel(scenario)

    with failpoints.inject({"worker.crash": "times:1"}):
        t0 = time.perf_counter()
        chaotic = run_find_relation_parallel(
            "P+C", scenario.r_objects, scenario.s_objects, scenario.pairs,
            workers=WORKERS, partition_timeout=60.0, max_retries=2,
        )
        chaos_seconds = time.perf_counter() - t0

    assert chaotic.results == clean.results
    assert chaotic.supervision.worker_deaths == chaotic.partitions
    assert chaotic.supervision.fallbacks == 0

    record(
        {
            "kind": "chaos_recovery",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "scenario": SCENARIO,
            "scale": SCALE,
            "grid_order": GRID_ORDER,
            "pairs": len(scenario.pairs),
            "workers": WORKERS,
            "partitions": chaotic.partitions,
            "cpu_count": os.cpu_count(),
            "schedule": "worker.crash=times:1",
            "clean_seconds": round(clean_seconds, 4),
            "chaos_seconds": round(chaos_seconds, 4),
            "recovery_overhead": round(chaos_seconds / clean_seconds, 3),
        }
    )

    # Every partition died once and was retried; the recovery cost must
    # stay within a small multiple of the clean run, not a timeout-wait.
    assert chaos_seconds < 10.0 * clean_seconds + 5.0
