"""Conservative polygon rasterisation.

Splits the grid cells under a polygon's MBR into three classes:

- **partial** — cells whose closed extent is touched by the polygon
  *boundary* (marked conservatively: a cell is never missed, it may at
  worst be over-marked, which only moves a would-be-full cell into the
  conservative class);
- **full** — untouched cells whose extent lies entirely in the polygon
  interior;
- empty — untouched cells entirely outside.

The correctness of classifying untouched cells by a single point rests
on the *uniform-run lemma*: two edge-adjacent untouched cells cannot
differ in status, because the boundary would have to cross their shared
(closed) edge and would then touch — and mark — both cells. Boundary
marking therefore walks every edge through the grid in cell units,
marking the cell of each inter-crossing span midpoint; points that land
exactly on a grid line mark both sides (and all four cells at a grid
corner), which handles edges running along grid lines and exact corner
crossings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.topology.pip import points_strictly_inside

if TYPE_CHECKING:  # pragma: no cover
    from repro.geometry.polygon import Polygon
    from repro.raster.grid import RasterGrid


class RasterizationError(ValueError):
    """Raised when a polygon's MBR covers too many cells to rasterise."""


@dataclass(frozen=True)
class RasterCells:
    """Rasterisation result in global integer cell coordinates.

    ``partial`` and ``full`` are ``(N, 2)`` int64 arrays of
    ``(col, row)`` pairs; together they are the conservative cell set.
    """

    partial: np.ndarray
    full: np.ndarray


def rasterize_polygon(
    polygon: "Polygon",
    grid: "RasterGrid",
    max_cells: int = 64_000_000,
) -> RasterCells:
    """Classify the cells under ``polygon``'s MBR (see module docstring)."""
    col_lo, row_lo, col_hi, row_hi = grid.cell_range_of_box(polygon.bbox)
    width = col_hi - col_lo + 1
    height = row_hi - row_lo + 1
    if width * height > max_cells:
        raise RasterizationError(
            f"polygon MBR spans {width}x{height} cells (> {max_cells}); "
            "use a coarser grid order"
        )

    marked = np.zeros((height, width), dtype=bool)
    for a, b in polygon.edges():
        _mark_edge(marked, grid, a, b, col_lo, row_lo)

    full = np.zeros((height, width), dtype=bool)
    _classify_unmarked_runs(full, marked, polygon, grid, col_lo, row_lo)

    prows, pcols = np.nonzero(marked)
    frows, fcols = np.nonzero(full)
    partial_cells = np.column_stack((pcols + col_lo, prows + row_lo)).astype(np.int64)
    full_cells = np.column_stack((fcols + col_lo, frows + row_lo)).astype(np.int64)
    return RasterCells(partial=partial_cells, full=full_cells)


def _mark_edge(
    marked: np.ndarray,
    grid: "RasterGrid",
    a: tuple[float, float],
    b: tuple[float, float],
    col_lo: int,
    row_lo: int,
) -> None:
    """Mark every cell whose closed extent the segment ``a-b`` touches."""
    ua, va = grid.to_cell_units(a[0], a[1])
    ub, vb = grid.to_cell_units(b[0], b[1])
    du = ub - ua
    dv = vb - va

    ts = [0.0, 1.0]
    if du != 0.0:
        lo, hi = (ua, ub) if ua <= ub else (ub, ua)
        for gx in range(math.ceil(lo), math.floor(hi) + 1):
            ts.append((gx - ua) / du)
    if dv != 0.0:
        lo, hi = (va, vb) if va <= vb else (vb, va)
        for gy in range(math.ceil(lo), math.floor(hi) + 1):
            ts.append((gy - va) / dv)
    ts = sorted(t for t in ts if 0.0 <= t <= 1.0)

    height, width = marked.shape

    def mark_point(u: float, v: float) -> None:
        cu = math.floor(u)
        cv = math.floor(v)
        cols = (cu - 1, cu) if u == cu else (cu,)
        rows = (cv - 1, cv) if v == cv else (cv,)
        for c in cols:
            lc = c - col_lo
            if not 0 <= lc < width:
                continue
            for r in rows:
                lr = r - row_lo
                if 0 <= lr < height:
                    marked[lr, lc] = True

    # Endpoints and exact crossings (handles corner touches).
    for t in ts:
        mark_point(ua + t * du, va + t * dv)
    # Span midpoints (handles the interior of the traversal and edges
    # running exactly along a grid line).
    for t0, t1 in zip(ts, ts[1:]):
        if t1 > t0:
            tm = (t0 + t1) / 2.0
            mark_point(ua + tm * du, va + tm * dv)


def _classify_unmarked_runs(
    full: np.ndarray,
    marked: np.ndarray,
    polygon: "Polygon",
    grid: "RasterGrid",
    col_lo: int,
    row_lo: int,
) -> None:
    """Classify maximal unmarked runs per row by one interior test each."""
    height, width = marked.shape
    run_rows: list[int] = []
    run_starts: list[int] = []
    run_ends: list[int] = []
    rep_points: list[tuple[float, float]] = []

    for lr in range(height):
        row_marked = marked[lr]
        lc = 0
        while lc < width:
            if row_marked[lc]:
                lc += 1
                continue
            start = lc
            while lc < width and not row_marked[lc]:
                lc += 1
            run_rows.append(lr)
            run_starts.append(start)
            run_ends.append(lc)
            rep_points.append(grid.cell_center(start + col_lo, lr + row_lo))

    if not rep_points:
        return
    inside = points_strictly_inside(rep_points, polygon)
    for k in range(len(rep_points)):
        if inside[k]:
            full[run_rows[k], run_starts[k] : run_ends[k]] = True


__all__ = ["RasterCells", "RasterizationError", "rasterize_polygon"]
