"""Unit tests for JoinRunStats derived measures."""

import json

import pytest

from repro.join.stats import JoinRunStats
from repro.topology.de9im import TopologicalRelation as T


def make_stats(**overrides):
    stats = JoinRunStats(method="P+C")
    for key, value in overrides.items():
        setattr(stats, key, value)
    return stats


class TestDerivedMeasures:
    def test_throughput(self):
        stats = make_stats(pairs=100, filter_seconds=0.5, refine_seconds=0.5)
        assert stats.throughput == 100.0

    def test_throughput_zero_time(self):
        assert make_stats(pairs=5).throughput == float("inf")

    def test_undetermined_pct(self):
        stats = make_stats(pairs=200, refined=50)
        assert stats.undetermined_pct == 25.0

    def test_undetermined_pct_empty(self):
        assert make_stats().undetermined_pct == 0.0

    def test_geometry_access_pct(self):
        stats = make_stats(
            r_objects_accessed=10, s_objects_accessed=10,
            r_objects_total=50, s_objects_total=50,
        )
        assert stats.geometry_access_pct == 20.0

    def test_geometry_access_pct_empty(self):
        assert make_stats().geometry_access_pct == 0.0

    def test_total_seconds(self):
        stats = make_stats(filter_seconds=1.5, refine_seconds=0.25)
        assert stats.total_seconds == 1.75


class TestRecord:
    def test_record_stages(self):
        stats = JoinRunStats(method="x")
        stats.record(T.DISJOINT, "mbr")
        stats.record(T.INSIDE, "if")
        stats.record(T.MEETS, "refinement")
        assert stats.pairs == 3
        assert stats.resolved_mbr == 1
        assert stats.resolved_if == 1
        assert stats.refined == 1
        assert stats.relation_counts[T.DISJOINT] == 1

    def test_summary_mentions_method_and_counts(self):
        stats = make_stats(pairs=10, refined=4, filter_seconds=0.1, refine_seconds=0.4)
        text = stats.summary()
        assert "P+C" in text and "10" in text and "40.0%" in text


class TestMerge:
    def test_merge_adds_everything(self):
        a = make_stats(pairs=10, refined=2, resolved_if=8, filter_seconds=0.5,
                       r_objects_total=4, s_objects_total=6, r_objects_accessed=1)
        b = make_stats(pairs=5, refined=5, refine_seconds=1.0,
                       r_objects_total=4, s_objects_total=6, s_objects_accessed=2)
        a.relation_counts[T.INSIDE] = 3
        b.relation_counts[T.INSIDE] = 1
        merged = a.merge(b)
        assert merged.pairs == 15
        assert merged.refined == 7
        assert merged.resolved_if == 8
        assert merged.relation_counts[T.INSIDE] == 4
        assert merged.total_seconds == 1.5
        assert merged.r_objects_accessed == 1 and merged.s_objects_accessed == 2

    def test_merge_different_methods_rejected(self):
        a = JoinRunStats(method="ST2")
        b = JoinRunStats(method="P+C")
        with pytest.raises(ValueError):
            a.merge(b)

    def test_variadic_merge_rejects_any_mismatched_part(self):
        a = JoinRunStats(method="P+C")
        b = JoinRunStats(method="P+C")
        c = JoinRunStats(method="APRIL")
        with pytest.raises(ValueError):
            a.merge(b, c)

    def test_variadic_merge_is_associative(self):
        parts = []
        for k in range(4):
            st = make_stats(
                pairs=10 + k, refined=k, filter_seconds=0.25,
                r_objects_total=2, s_objects_total=3,
            )
            st.relation_counts[T.MEETS] = k
            parts.append(st)
        flat = parts[0].merge(*parts[1:])
        nested = parts[0].merge(parts[1]).merge(parts[2].merge(parts[3]))
        assert flat.to_dict() == nested.to_dict()
        assert flat.relation_counts == nested.relation_counts

    def test_merge_does_not_mutate_inputs(self):
        a = make_stats(pairs=3)
        b = make_stats(pairs=4)
        a.merge(b)
        assert a.pairs == 3 and b.pairs == 4

    def test_merge_sums_object_totals_documented_overcount(self):
        # merge() sums the object-universe fields, which is right for
        # partitioned inputs (disk-join tiles) but an overcount when
        # parts share one object universe — pair-stream executors must
        # overwrite the fields after merging (the docstring's caveat).
        a = make_stats(r_objects_total=10, s_objects_total=10)
        b = make_stats(r_objects_total=10, s_objects_total=10)
        merged = a.merge(b)
        assert merged.r_objects_total == 20  # NOT deduplicated
        assert merged.s_objects_total == 20


class TestSerialization:
    def test_to_dict_omits_infinite_throughput(self):
        # Regression: pairs>0 with zero recorded time used to put
        # float("inf") in the dict, which json.dumps renders as the
        # invalid-JSON token "Infinity".
        stats = make_stats(pairs=5)
        d = stats.to_dict()
        assert "throughput" not in d
        text = json.dumps(d, allow_nan=False)  # must not raise
        assert "Infinity" not in text
        # The live property still reports inf for in-process callers.
        assert stats.throughput == float("inf")

    def test_to_dict_includes_finite_throughput(self):
        stats = make_stats(pairs=100, filter_seconds=0.5, refine_seconds=0.5)
        d = stats.to_dict()
        assert d["throughput"] == 100.0
        assert d["total_seconds"] == 1.0

    def test_round_trip_recomputes_derived(self):
        stats = make_stats(pairs=40, refined=10, filter_seconds=0.5)
        stats.relation_counts[T.INSIDE] = 40
        rebuilt = JoinRunStats.from_dict(stats.to_dict())
        assert rebuilt.to_dict() == stats.to_dict()
        assert rebuilt.undetermined_pct == stats.undetermined_pct
        assert rebuilt.relation_counts[T.INSIDE] == 40
