"""An in-memory R-tree over MBRs (STR bulk loading).

The filter step of a topology join needs two access paths: a *join*
between two MBR collections (see :mod:`repro.join.mbr_join`) and a
*selection* — all objects whose MBR intersects a query window, used by
topological selection queries (Sec. 1's "topological relations as
predicates in selection queries"). This module provides the classic
Sort-Tile-Recursive (STR) packed R-tree [Leutenegger et al.] with:

- :meth:`RTree.query` — window intersection selection;
- :meth:`RTree.join` — R-tree x R-tree spatial join by synchronized
  descent (equivalent output to the sweep join, different access path);
- :meth:`RTree.nearest_mbr` — MBR-distance nearest neighbour (utility
  for data exploration; not used by the paper's pipeline).

Packed trees are static: build once over a dataset, query many times —
exactly the paper's workload pattern.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.geometry.box import Box

DEFAULT_FANOUT = 16


@dataclass
class _Node:
    box: Box
    #: Leaf nodes carry (box, object index) entries; inner nodes carry children.
    children: list["_Node"]
    entries: list[tuple[Box, int]]

    @property
    def is_leaf(self) -> bool:
        return not self.children


class RTree:
    """A static STR-packed R-tree over a sequence of MBRs."""

    def __init__(self, boxes: Sequence[Box], fanout: int = DEFAULT_FANOUT) -> None:
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self.fanout = fanout
        self.size = len(boxes)
        self._root = self._bulk_load(list(enumerate(boxes))) if boxes else None

    # ------------------------------------------------------------------
    # construction (Sort-Tile-Recursive)
    # ------------------------------------------------------------------
    def _bulk_load(self, items: list[tuple[int, Box]]) -> _Node:
        leaves = self._pack_leaves(items)
        level = leaves
        while len(level) > 1:
            level = self._pack_inner(level)
        return level[0]

    def _pack_leaves(self, items: list[tuple[int, Box]]) -> list[_Node]:
        n = len(items)
        leaf_count = math.ceil(n / self.fanout)
        slices = math.ceil(math.sqrt(leaf_count))
        items = sorted(items, key=lambda it: it[1].center[0])
        per_slice = math.ceil(n / slices)

        leaves: list[_Node] = []
        for s in range(0, n, per_slice):
            strip = sorted(items[s : s + per_slice], key=lambda it: it[1].center[1])
            for k in range(0, len(strip), self.fanout):
                chunk = strip[k : k + self.fanout]
                entries = [(box, index) for index, box in chunk]
                leaves.append(
                    _Node(
                        box=Box.union_all([box for box, _ in entries]),
                        children=[],
                        entries=entries,
                    )
                )
        return leaves

    def _pack_inner(self, nodes: list[_Node]) -> list[_Node]:
        n = len(nodes)
        node_count = math.ceil(n / self.fanout)
        slices = math.ceil(math.sqrt(node_count))
        nodes = sorted(nodes, key=lambda node: node.box.center[0])
        per_slice = math.ceil(n / slices)

        parents: list[_Node] = []
        for s in range(0, n, per_slice):
            strip = sorted(nodes[s : s + per_slice], key=lambda node: node.box.center[1])
            for k in range(0, len(strip), self.fanout):
                chunk = strip[k : k + self.fanout]
                parents.append(
                    _Node(
                        box=Box.union_all([c.box for c in chunk]),
                        children=chunk,
                        entries=[],
                    )
                )
        return parents

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, window: Box) -> list[int]:
        """Indices of all objects whose MBR intersects ``window``."""
        if self._root is None:
            return []
        result: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.box.intersects(window):
                continue
            if node.is_leaf:
                result.extend(
                    index for box, index in node.entries if box.intersects(window)
                )
            else:
                stack.extend(node.children)
        return result

    def query_contained_in(self, window: Box) -> list[int]:
        """Indices of objects whose MBR lies entirely inside ``window``."""
        if self._root is None:
            return []
        result: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.box.intersects(window):
                continue
            if node.is_leaf:
                result.extend(
                    index for box, index in node.entries if window.contains_box(box)
                )
            else:
                stack.extend(node.children)
        return result

    def join(self, other: "RTree") -> list[tuple[int, int]]:
        """All index pairs (i from self, j from other) with intersecting
        MBRs, by synchronized tree descent."""
        if self._root is None or other._root is None:
            return []
        result: list[tuple[int, int]] = []
        stack = [(self._root, other._root)]
        while stack:
            a, b = stack.pop()
            if not a.box.intersects(b.box):
                continue
            if a.is_leaf and b.is_leaf:
                for abox, i in a.entries:
                    for bbox, j in b.entries:
                        if abox.intersects(bbox):
                            result.append((i, j))
            elif a.is_leaf:
                stack.extend((a, child) for child in b.children)
            elif b.is_leaf:
                stack.extend((child, b) for child in a.children)
            else:
                # Descend the larger node to keep the pairing balanced.
                if a.box.area >= b.box.area:
                    stack.extend((child, b) for child in a.children)
                else:
                    stack.extend((a, child) for child in b.children)
        return result

    def nearest_mbr(self, x: float, y: float) -> int | None:
        """Index of the object whose MBR is nearest to point ``(x, y)``
        (best-first search over MBR distance; None for an empty tree)."""
        if self._root is None:
            return None
        import heapq

        counter = 0  # tie-breaker: heap entries are never compared by node
        heap: list[tuple[float, int, _Node | None, int]] = [
            (_point_box_distance(x, y, self._root.box), counter, self._root, -1)
        ]
        while heap:
            dist, _, node, index = heapq.heappop(heap)
            if node is None:
                return index
            if node.is_leaf:
                for box, obj_index in node.entries:
                    counter += 1
                    heapq.heappush(
                        heap, (_point_box_distance(x, y, box), counter, None, obj_index)
                    )
            else:
                for child in node.children:
                    counter += 1
                    heapq.heappush(
                        heap, (_point_box_distance(x, y, child.box), counter, child, -1)
                    )
        return None

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def height(self) -> int:
        """Tree height (0 for an empty tree, 1 for a single leaf)."""
        node = self._root
        if node is None:
            return 0
        h = 1
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def iter_boxes(self) -> Iterator[tuple[Box, int]]:
        """All (box, index) leaf entries (tree order)."""
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.children)


def _point_box_distance(x: float, y: float, box: Box) -> float:
    dx = max(box.xmin - x, 0.0, x - box.xmax)
    dy = max(box.ymin - y, 0.0, y - box.ymax)
    return math.hypot(dx, dy)


__all__ = ["RTree", "DEFAULT_FANOUT"]
