"""Ablation: simplification-based speedups vs the exact P+C filter.

The obvious alternative to the paper's approach is to cut refinement
cost by Douglas-Peucker-simplifying the geometry. This ablation makes
the trade-off concrete on the OLE-OPE analogue: simplified OP2 gets
faster as tolerance grows — and starts returning *wrong relations*,
while P+C achieves its speedup with exact answers.
"""

from __future__ import annotations

from repro.datasets.catalog import DEFAULT_GRID_ORDER, load_scenario
from repro.experiments.common import ExperimentResult
from repro.geometry.simplify import simplify_polygon
from repro.join.objects import make_objects
from repro.join.pipeline import PIPELINES, run_find_relation

DEFAULT_TOLERANCES = (0.1, 0.5, 2.0)


def run_ablation_simplify(
    scale: float = 1.0,
    grid_order: int = DEFAULT_GRID_ORDER,
    scenario: str = "OLE-OPE",
    tolerances: tuple[float, ...] = DEFAULT_TOLERANCES,
) -> ExperimentResult:
    """Throughput and answer error of simplify+OP2 vs exact P+C."""
    data = load_scenario(scenario, scale, grid_order)
    result = ExperimentResult(
        experiment_id="Ablation (simplify)",
        title=f"simplification vs exact intermediate filter ({scenario})",
        columns=("Variant", "Avg vertices", "Throughput (pairs/s)", "Wrong relations %"),
    )

    # Exact ground truth (any method; they agree).
    pc = PIPELINES["P+C"]
    truth = {
        (i, j): pc.find_relation(data.r_objects[i], data.s_objects[j]).relation
        for i, j in data.pairs
    }
    avg_vertices = (
        sum(o.num_vertices for o in data.r_objects + data.s_objects)
        / (len(data.r_objects) + len(data.s_objects))
    )

    op2_stats = run_find_relation("OP2", data.r_objects, data.s_objects, data.pairs)
    result.add_row("OP2 exact", avg_vertices, op2_stats.throughput, 0.0)
    pc_stats = run_find_relation("P+C", data.r_objects, data.s_objects, data.pairs)
    result.add_row("P+C exact", avg_vertices, pc_stats.throughput, 0.0)

    op2 = PIPELINES["OP2"]
    for tolerance in tolerances:
        r_simplified = make_objects(
            [simplify_polygon(o.polygon, tolerance) for o in data.r_objects], grid=None
        )
        s_simplified = make_objects(
            [simplify_polygon(o.polygon, tolerance) for o in data.s_objects], grid=None
        )
        simple_avg = (
            sum(o.num_vertices for o in r_simplified + s_simplified)
            / (len(r_simplified) + len(s_simplified))
        )
        stats = run_find_relation("OP2", r_simplified, s_simplified, data.pairs)
        wrong = sum(
            1
            for i, j in data.pairs
            if op2.find_relation(r_simplified[i], s_simplified[j]).relation
            is not truth[(i, j)]
        )
        result.add_row(
            f"OP2 simplified tol={tolerance:g}",
            simple_avg,
            stats.throughput,
            100.0 * wrong / max(1, len(data.pairs)),
        )
    result.notes.append(
        "expected shape: simplification buys OP2 throughput at the price of wrong "
        "relations; P+C reaches higher throughput with zero error"
    )
    return result


__all__ = ["run_ablation_simplify"]
