"""Tests for the vectorised batch P+C runner."""

import numpy as np
import pytest

from repro.datasets import load_scenario
from repro.filters.mbr import classify_mbr_pair
from repro.join.batch import _CASE_CODES, classify_mbr_pairs_bulk, run_find_relation_batch
from repro.join.pipeline import run_find_relation


@pytest.fixture(scope="module")
def scenario():
    return load_scenario("OLE-OPE", scale=0.3, grid_order=10)


class TestBulkClassification:
    def test_empty(self, scenario):
        codes = classify_mbr_pairs_bulk(scenario.r_objects, scenario.s_objects, [])
        assert codes.size == 0

    def test_matches_scalar_classifier(self, scenario):
        codes = classify_mbr_pairs_bulk(
            scenario.r_objects, scenario.s_objects, scenario.pairs
        )
        for k, (i, j) in enumerate(scenario.pairs):
            case = classify_mbr_pair(scenario.r_objects[i].box, scenario.s_objects[j].box)
            assert int(codes[k]) == _CASE_CODES[case], (i, j)

    def test_synthetic_all_cases(self):
        from repro.geometry import Box, Polygon
        from repro.join.objects import make_objects
        from repro.raster import RasterGrid

        grid = RasterGrid(Box(0, 0, 64, 64), order=6)
        r_polys = [
            Polygon.box(0, 0, 10, 10),   # vs equal
            Polygon.box(0, 0, 10, 10),   # vs contains (r in s)
            Polygon.box(0, 0, 30, 30),   # vs inside (s in r)
            Polygon.box(20, 5, 25, 55),  # vs cross
            Polygon.box(0, 0, 10, 10),   # vs overlap
            Polygon.box(0, 0, 1, 1),     # vs disjoint
        ]
        s_polys = [
            Polygon.box(0, 0, 10, 10),
            Polygon.box(-5, -5, 20, 20),
            Polygon.box(5, 5, 9, 9),
            Polygon.box(5, 20, 55, 25),
            Polygon.box(5, 5, 15, 15),
            Polygon.box(50, 50, 60, 60),
        ]
        r_objects = make_objects(r_polys, grid)
        s_objects = make_objects(s_polys, grid)
        pairs = [(k, k) for k in range(6)]
        codes = classify_mbr_pairs_bulk(r_objects, s_objects, pairs)
        for k in range(6):
            case = classify_mbr_pair(r_objects[k].box, s_objects[k].box)
            assert int(codes[k]) == _CASE_CODES[case]


class TestBatchRunner:
    def test_same_verdicts_as_scalar(self, scenario):
        scalar = run_find_relation("P+C", scenario.r_objects, scenario.s_objects, scenario.pairs)
        batch = run_find_relation_batch(scenario.r_objects, scenario.s_objects, scenario.pairs)
        assert batch.pairs == scalar.pairs
        assert batch.relation_counts == scalar.relation_counts
        assert batch.refined == scalar.refined
        assert batch.resolved_mbr == scalar.resolved_mbr
        assert batch.resolved_if == scalar.resolved_if

    def test_geometry_access_matches(self, scenario):
        batch = run_find_relation_batch(scenario.r_objects, scenario.s_objects, scenario.pairs)
        scalar = run_find_relation("P+C", scenario.r_objects, scenario.s_objects, scenario.pairs)
        assert batch.r_objects_accessed == scalar.r_objects_accessed
        assert batch.s_objects_accessed == scalar.s_objects_accessed

    def test_empty_stream(self, scenario):
        stats = run_find_relation_batch(scenario.r_objects, scenario.s_objects, [])
        assert stats.pairs == 0
        assert stats.undetermined_pct == 0.0
