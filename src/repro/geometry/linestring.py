"""LineString geometry (open or closed polylines).

DE-9IM is defined over points, lines and areas; the paper's pipeline
is areal, but its applications (interlinking road networks with
administrative areas, image-object arrangements) also relate lines and
points to polygons. :class:`LineString` supplies the 1-D geometry for
the mixed-dimension relate engine (:mod:`repro.topology.mixed`).

Topology of a linestring (OGC Mod-2 rule, simplified to non-self-
intersecting lines): the *boundary* is its two endpoints — empty when
the line is closed (a ring-like line) — and the *interior* is the rest
of the curve.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterator, Sequence

from repro.geometry.box import Box
from repro.geometry.ring import Coord
from repro.geometry.segment import (
    SegmentIntersectionKind,
    point_on_segment,
    segment_intersection,
)


class LineString:
    """A polyline of at least two distinct vertices."""

    __slots__ = ("coords", "__dict__")

    def __init__(self, coords: Sequence[Coord]) -> None:
        pts = [(float(x), float(y)) for x, y in coords]
        deduped: list[Coord] = []
        for p in pts:
            if not deduped or p != deduped[-1]:
                deduped.append(p)
        if len(deduped) < 2:
            raise ValueError("a linestring needs at least 2 distinct vertices")
        self.coords: list[Coord] = deduped

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def is_closed(self) -> bool:
        return self.coords[0] == self.coords[-1]

    @property
    def endpoints(self) -> tuple[Coord, ...]:
        """The boundary: both endpoints, or empty for a closed line."""
        if self.is_closed:
            return ()
        return (self.coords[0], self.coords[-1])

    def edges(self) -> Iterator[tuple[Coord, Coord]]:
        for a, b in zip(self.coords, self.coords[1:]):
            yield a, b

    @cached_property
    def bbox(self) -> Box:
        return Box.from_points(self.coords)

    @cached_property
    def length(self) -> float:
        total = 0.0
        for (ax, ay), (bx, by) in self.edges():
            total += ((bx - ax) ** 2 + (by - ay) ** 2) ** 0.5
        return total

    @property
    def num_vertices(self) -> int:
        return len(self.coords)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def covers_point(self, point: Coord) -> bool:
        """True iff ``point`` lies on the (closed) curve."""
        if not self.bbox.contains_point(point[0], point[1]):
            return False
        return any(point_on_segment(point, a, b) for a, b in self.edges())

    def point_on_interior(self, point: Coord) -> bool:
        """True iff ``point`` lies on the curve but is not a boundary
        endpoint."""
        if not self.covers_point(point):
            return False
        return point not in self.endpoints

    def is_simple(self) -> bool:
        """No self-intersections except consecutive-segment joints (and
        the closing joint of a closed line)."""
        edges = list(self.edges())
        n = len(edges)
        for i in range(n):
            a1, a2 = edges[i]
            for j in range(i + 1, n):
                b1, b2 = edges[j]
                inter = segment_intersection(a1, a2, b1, b2)
                if inter.kind is SegmentIntersectionKind.NONE:
                    continue
                if inter.kind is SegmentIntersectionKind.OVERLAP:
                    return False
                adjacent = j == i + 1
                closing = self.is_closed and i == 0 and j == n - 1
                if adjacent and inter.points[0] == a2:
                    continue
                if closing and inter.points[0] == a1:
                    continue
                return False
        return True

    # ------------------------------------------------------------------
    # housekeeping
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LineString):
            return NotImplemented
        return self.coords == other.coords or self.coords == other.coords[::-1]

    def __hash__(self) -> int:
        forward = tuple(self.coords)
        backward = tuple(reversed(self.coords))
        return hash(min(forward, backward))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LineString({len(self.coords)} vertices)"

    def __len__(self) -> int:
        return len(self.coords)

    def translated(self, dx: float, dy: float) -> "LineString":
        return LineString([(x + dx, y + dy) for x, y in self.coords])

    def reversed(self) -> "LineString":
        return LineString(list(reversed(self.coords)))


__all__ = ["LineString"]
