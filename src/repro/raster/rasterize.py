"""Conservative polygon rasterisation.

Splits the grid cells under a polygon's MBR into three classes:

- **partial** — cells whose closed extent is touched by the polygon
  *boundary* (marked conservatively: a cell is never missed, it may at
  worst be over-marked, which only moves a would-be-full cell into the
  conservative class);
- **full** — untouched cells whose extent lies entirely in the polygon
  interior;
- empty — untouched cells entirely outside.

The correctness of classifying untouched cells by a single point rests
on the *uniform-run lemma*: two edge-adjacent untouched cells cannot
differ in status, because the boundary would have to cross their shared
(closed) edge and would then touch — and mark — both cells. Boundary
marking therefore visits every edge's grid-line crossings in cell
units, marking the cell of each inter-crossing span midpoint; points
that land exactly on a grid line mark both sides (and all four cells at
a grid corner), which handles edges running along grid lines and exact
corner crossings.

Two implementations: the default computes all crossings of all edges in
one bulk numpy pass (a single floor/ceil sweep over concatenated edge
arrays, a lexsort for per-edge span ordering, and scatter-marking via
flat indices); the original per-edge Python walk is kept and selected
by ``REPRO_REFERENCE_KERNELS=1``. Both produce bit-identical grids —
they evaluate the same IEEE expressions — which the differential suite
checks exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.raster import kernels
from repro.topology.pip import points_strictly_inside

if TYPE_CHECKING:  # pragma: no cover
    from repro.geometry.polygon import Polygon
    from repro.raster.grid import RasterGrid


class RasterizationError(ValueError):
    """Raised when a polygon's MBR covers too many cells to rasterise."""


@dataclass(frozen=True)
class RasterCells:
    """Rasterisation result in global integer cell coordinates.

    ``partial`` and ``full`` are ``(N, 2)`` int64 arrays of
    ``(col, row)`` pairs; together they are the conservative cell set.
    """

    partial: np.ndarray
    full: np.ndarray


def rasterize_polygon(
    polygon: "Polygon",
    grid: "RasterGrid",
    max_cells: int = 64_000_000,
) -> RasterCells:
    """Classify the cells under ``polygon``'s MBR (see module docstring)."""
    col_lo, row_lo, col_hi, row_hi = grid.cell_range_of_box(polygon.bbox)
    width = col_hi - col_lo + 1
    height = row_hi - row_lo + 1
    if width * height > max_cells:
        raise RasterizationError(
            f"polygon MBR spans {width}x{height} cells (> {max_cells}); "
            "use a coarser grid order"
        )

    reference = kernels.reference_kernels_enabled()
    marked = np.zeros((height, width), dtype=bool)
    if reference:
        for a, b in polygon.edges():
            _reference_mark_edge(marked, grid, a, b, col_lo, row_lo)
    else:
        _mark_edges_bulk(marked, grid, polygon, col_lo, row_lo)

    full = np.zeros((height, width), dtype=bool)
    if reference:
        _reference_classify_unmarked_runs(full, marked, polygon, grid, col_lo, row_lo)
    else:
        _classify_unmarked_runs(full, marked, polygon, grid, col_lo, row_lo)

    prows, pcols = np.nonzero(marked)
    frows, fcols = np.nonzero(full)
    partial_cells = np.column_stack((pcols + col_lo, prows + row_lo)).astype(np.int64)
    full_cells = np.column_stack((fcols + col_lo, frows + row_lo)).astype(np.int64)
    return RasterCells(partial=partial_cells, full=full_cells)


# ----------------------------------------------------------------------
# bulk boundary marking (default)
# ----------------------------------------------------------------------
def _mark_edges_bulk(
    marked: np.ndarray,
    grid: "RasterGrid",
    polygon: "Polygon",
    col_lo: int,
    row_lo: int,
) -> None:
    """Mark all boundary-touched cells of all edges in one numpy pass."""
    edges = list(polygon.edges())
    if not edges:
        return
    coords = np.asarray(edges, dtype=np.float64)  # (E, 2, 2)
    space = grid.dataspace
    ua = (coords[:, 0, 0] - space.xmin) / grid.cell_width
    va = (coords[:, 0, 1] - space.ymin) / grid.cell_height
    ub = (coords[:, 1, 0] - space.xmin) / grid.cell_width
    vb = (coords[:, 1, 1] - space.ymin) / grid.cell_height
    du = ub - ua
    dv = vb - va
    n = ua.size

    ex_idx, tx = _axis_crossings(ua, ub, du)
    ey_idx, ty = _axis_crossings(va, vb, dv)

    # Per edge: endpoints (t = 0, 1) plus every grid-line crossing.
    edge_ids = np.concatenate((np.arange(n), np.arange(n), ex_idx, ey_idx))
    ts = np.concatenate((np.zeros(n), np.ones(n), tx, ty))
    keep = (ts >= 0.0) & (ts <= 1.0)
    edge_ids = edge_ids[keep]
    ts = ts[keep]

    # Span ordering within each edge: lexsort by (edge, t).
    order = np.lexsort((ts, edge_ids))
    edge_ids = edge_ids[order]
    ts = ts[order]

    # Crossing / endpoint points (handles corner touches)...
    pu = ua[edge_ids] + ts * du[edge_ids]
    pv = va[edge_ids] + ts * dv[edge_ids]
    # ...and span midpoints (interior of the traversal; edges running
    # exactly along a grid line).
    span = (edge_ids[1:] == edge_ids[:-1]) & (ts[1:] > ts[:-1])
    tm = (ts[:-1][span] + ts[1:][span]) / 2.0
    mids = edge_ids[:-1][span]
    mu = ua[mids] + tm * du[mids]
    mv = va[mids] + tm * dv[mids]

    _mark_points_bulk(
        marked,
        np.concatenate((pu, mu)),
        np.concatenate((pv, mv)),
        col_lo,
        row_lo,
    )


def _axis_crossings(
    start: np.ndarray, stop: np.ndarray, delta: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Edge indices and ``t`` parameters of all integer-line crossings.

    For each edge with nonzero ``delta``, the crossed grid lines are the
    integers in ``[ceil(min), floor(max)]``; one floor/ceil pass over
    the concatenated edge arrays yields them all, expanded via the
    repeat/arange trick.
    """
    g_lo = np.ceil(np.minimum(start, stop))
    g_hi = np.floor(np.maximum(start, stop))
    counts = (g_hi - g_lo + 1.0).astype(np.int64)
    counts = np.where((delta != 0.0) & (counts > 0), counts, 0)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    edge_idx = np.repeat(np.arange(counts.size), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    g = np.arange(total) - np.repeat(offsets[:-1], counts) + np.repeat(g_lo, counts)
    t = (g - start[edge_idx]) / delta[edge_idx]
    return edge_idx, t


def _mark_points_bulk(
    marked: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    col_lo: int,
    row_lo: int,
) -> None:
    """Scatter-mark the cells touched by points in cell units.

    A point on a vertical grid line marks both horizontal neighbours, on
    a horizontal line both vertical neighbours, and all four cells at an
    exact grid corner — same closed-extent semantics as the scalar
    ``mark_point``.
    """
    height, width = marked.shape
    cu = np.floor(u)
    cv = np.floor(v)
    on_u = u == cu
    on_v = v == cv
    col = cu.astype(np.int64) - col_lo
    row = cv.astype(np.int64) - row_lo
    both = on_u & on_v
    cols = np.concatenate((col, col[on_u] - 1, col[on_v], col[both] - 1))
    rows = np.concatenate((row, row[on_u], row[on_v] - 1, row[both] - 1))
    ok = (cols >= 0) & (cols < width) & (rows >= 0) & (rows < height)
    marked.ravel()[rows[ok] * width + cols[ok]] = True


# ----------------------------------------------------------------------
# interior classification
# ----------------------------------------------------------------------
def _classify_unmarked_runs(
    full: np.ndarray,
    marked: np.ndarray,
    polygon: "Polygon",
    grid: "RasterGrid",
    col_lo: int,
    row_lo: int,
) -> None:
    """Classify maximal unmarked runs per row by one interior test each.

    Run extraction is a vectorised row-wise diff over the marked grid;
    only the (few) runs and their representative points touch Python.
    """
    height, width = marked.shape
    unmarked = (~marked).astype(np.int8)
    pad = np.zeros((height, 1), dtype=np.int8)
    delta = np.diff(unmarked, axis=1, prepend=pad, append=pad)
    run_rows, run_starts = np.nonzero(delta == 1)
    run_ends = np.nonzero(delta == -1)[1]  # row-major: aligned with starts
    if run_rows.size == 0:
        return
    px = grid.dataspace.xmin + (run_starts + col_lo + 0.5) * grid.cell_width
    py = grid.dataspace.ymin + (run_rows + row_lo + 0.5) * grid.cell_height
    inside = points_strictly_inside(list(zip(px.tolist(), py.tolist())), polygon)
    for k in np.nonzero(np.asarray(inside))[0]:
        full[run_rows[k], run_starts[k] : run_ends[k]] = True


# ----------------------------------------------------------------------
# reference implementations (the original per-edge / per-cell walks)
# ----------------------------------------------------------------------
def _reference_mark_edge(
    marked: np.ndarray,
    grid: "RasterGrid",
    a: tuple[float, float],
    b: tuple[float, float],
    col_lo: int,
    row_lo: int,
) -> None:
    """Mark every cell whose closed extent the segment ``a-b`` touches."""
    ua, va = grid.to_cell_units(a[0], a[1])
    ub, vb = grid.to_cell_units(b[0], b[1])
    du = ub - ua
    dv = vb - va

    ts = [0.0, 1.0]
    if du != 0.0:
        lo, hi = (ua, ub) if ua <= ub else (ub, ua)
        for gx in range(math.ceil(lo), math.floor(hi) + 1):
            ts.append((gx - ua) / du)
    if dv != 0.0:
        lo, hi = (va, vb) if va <= vb else (vb, va)
        for gy in range(math.ceil(lo), math.floor(hi) + 1):
            ts.append((gy - va) / dv)
    ts = sorted(t for t in ts if 0.0 <= t <= 1.0)

    height, width = marked.shape

    def mark_point(u: float, v: float) -> None:
        cu = math.floor(u)
        cv = math.floor(v)
        cols = (cu - 1, cu) if u == cu else (cu,)
        rows = (cv - 1, cv) if v == cv else (cv,)
        for c in cols:
            lc = c - col_lo
            if not 0 <= lc < width:
                continue
            for r in rows:
                lr = r - row_lo
                if 0 <= lr < height:
                    marked[lr, lc] = True

    # Endpoints and exact crossings (handles corner touches).
    for t in ts:
        mark_point(ua + t * du, va + t * dv)
    # Span midpoints (handles the interior of the traversal and edges
    # running exactly along a grid line).
    for t0, t1 in zip(ts, ts[1:]):
        if t1 > t0:
            tm = (t0 + t1) / 2.0
            mark_point(ua + tm * du, va + tm * dv)


def _reference_classify_unmarked_runs(
    full: np.ndarray,
    marked: np.ndarray,
    polygon: "Polygon",
    grid: "RasterGrid",
    col_lo: int,
    row_lo: int,
) -> None:
    """Classify maximal unmarked runs per row by one interior test each."""
    height, width = marked.shape
    run_rows: list[int] = []
    run_starts: list[int] = []
    run_ends: list[int] = []
    rep_points: list[tuple[float, float]] = []

    for lr in range(height):
        row_marked = marked[lr]
        lc = 0
        while lc < width:
            if row_marked[lc]:
                lc += 1
                continue
            start = lc
            while lc < width and not row_marked[lc]:
                lc += 1
            run_rows.append(lr)
            run_starts.append(start)
            run_ends.append(lc)
            rep_points.append(grid.cell_center(start + col_lo, lr + row_lo))

    if not rep_points:
        return
    inside = points_strictly_inside(rep_points, polygon)
    for k in range(len(rep_points)):
        if inside[k]:
            full[run_rows[k], run_starts[k] : run_ends[k]] = True


__all__ = ["RasterCells", "RasterizationError", "rasterize_polygon"]
