"""repro — Scalable Spatial Topology Joins (EDBT 2026 reproduction).

A complete from-scratch Python implementation of the paper's raster
intermediate filter for spatial topology joins, together with every
substrate it depends on: a computational-geometry kernel, a DE-9IM
engine, the APRIL Hilbert-interval approximation, MBR join algorithms,
synthetic TIGER/OSM-style datasets and an experiment harness that
regenerates every table and figure of the paper's evaluation.

Quick tour (see ``examples/quickstart.py`` for a runnable version)::

    from repro import Polygon, Box, RasterGrid, SpatialObject, PIPELINES

    grid = RasterGrid(Box(0, 0, 100, 100), order=10)
    r = SpatialObject.from_polygon(0, Polygon.box(10, 10, 40, 40), grid)
    s = SpatialObject.from_polygon(1, Polygon.box(20, 20, 30, 30), grid)
    outcome = PIPELINES["P+C"].find_relation(r, s)   # -> contains, no DE-9IM

Package map:

- :mod:`repro.geometry`    — polygons, boxes, robust predicates, WKT
- :mod:`repro.topology`    — DE-9IM matrices, masks, the relate engine
- :mod:`repro.raster`      — Hilbert grid, rasteriser, APRIL P/C lists
- :mod:`repro.filters`     — MBR filter, Fig. 5 intermediate filters,
  Fig. 6 relate_p filters (the paper's contribution)
- :mod:`repro.join`        — MBR joins, the ST2/OP2/APRIL/P+C pipelines
- :mod:`repro.store`       — persistent dataset indexes + the warm-cache
  join :class:`Engine` (the recommended front door for repeated joins)
- :mod:`repro.datasets`    — synthetic TIGER/OSM analogues (Tables 2-3)
- :mod:`repro.experiments` — one module per table/figure of the paper

Canonical join entry points, all returning one :class:`JoinRun`
envelope regardless of execution mode::

    from repro import Engine

    engine = Engine()
    run = engine.join(r_polygons, s_polygons, mode="auto", workers=4)
    run = engine.join("r_index/", "s_index/")      # warm: no rasterising

The same envelope has a frozen, versioned wire form —
``run.to_wire()`` / :meth:`JoinRun.from_wire` (``api_version: 1``) —
which is what the long-lived HTTP join service speaks
(:mod:`repro.serve`, ``python -m repro serve``; see ``docs/serving.md``).
"""

from repro.core import TopologyJoin
from repro.geometry import Box, Polygon, Ring, dumps_wkt, loads_wkt
from repro.join.diskjoin import DiskPartitionedJoin
from repro.join.objects import SpatialObject, make_objects
from repro.join.pipeline import PIPELINES, run_find_relation, run_relate
from repro.join.run import WIRE_VERSION, JoinResult, JoinRun
from repro.raster import AprilApproximation, IntervalList, RasterGrid, build_april
from repro.raster.storage import StoreError
from repro.store import (
    Engine,
    SpatialDataset,
    build_dataset,
    default_engine,
    open_dataset,
)
from repro.serve import JoinService, start_server
from repro.serve.schema import API_VERSION, WireError, dumps_wire, loads_wire
from repro.topology import DE9IM, TopologicalRelation, most_specific_relation, relate

__version__ = "1.2.0"

__all__ = [
    "API_VERSION",
    "AprilApproximation",
    "Box",
    "DE9IM",
    "DiskPartitionedJoin",
    "Engine",
    "IntervalList",
    "JoinResult",
    "JoinRun",
    "JoinService",
    "PIPELINES",
    "Polygon",
    "RasterGrid",
    "Ring",
    "SpatialDataset",
    "SpatialObject",
    "StoreError",
    "TopologicalRelation",
    "TopologyJoin",
    "WIRE_VERSION",
    "WireError",
    "__version__",
    "build_april",
    "build_dataset",
    "default_engine",
    "dumps_wire",
    "dumps_wkt",
    "loads_wire",
    "loads_wkt",
    "make_objects",
    "most_specific_relation",
    "open_dataset",
    "relate",
    "run_find_relation",
    "run_relate",
    "start_server",
]
