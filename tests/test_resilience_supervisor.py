"""Chaos tests: the supervised pool under crash/hang/error schedules.

Every test asserts the contract that matters — results identical to a
clean serial run, whatever the failure schedule — plus the supervision
accounting and the ``_STATE`` lifecycle regression (the fork-inherited
state globals must be empty after every exit path: normal, retry,
timeout, and serial fallback).
"""

import multiprocessing
import time

import pytest

from repro.datasets import load_scenario
from repro.obs.metrics import get_registry, reset_metrics, set_metrics
from repro.parallel import executor, preprocess
from repro.parallel.executor import run_find_relation_parallel, run_relate_parallel
from repro.parallel.preprocess import build_april_parallel
from repro.raster.april import build_april
from repro.resilience import failpoints
from repro.resilience.supervisor import SupervisionReport, supervised_map
from repro.topology import TopologicalRelation as T

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="supervised pool needs the fork start method",
)


@pytest.fixture(autouse=True)
def clean_failpoints():
    failpoints.disarm_all()
    yield
    failpoints.disarm_all()


@pytest.fixture(scope="module")
def scenario():
    return load_scenario("OLE-OPE", scale=0.3, grid_order=10)


@pytest.fixture(scope="module")
def serial_run(scenario):
    return run_find_relation_parallel(
        "P+C", scenario.r_objects, scenario.s_objects, scenario.pairs, workers=1
    )


def _chaos_find(scenario, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("chunk_size", max(1, len(scenario.pairs) // 8))
    return run_find_relation_parallel(
        "P+C", scenario.r_objects, scenario.s_objects, scenario.pairs, **kwargs
    )


# ----------------------------------------------------------------------
# supervised_map building blocks (plain picklable workers)
# ----------------------------------------------------------------------
def _double(task):
    index, attempt = task
    return index * 2


def _double_serial(index):
    return index * 2


def _fail_on_first_attempt(task):
    index, attempt = task
    if attempt == 1:
        raise ValueError(f"task {index} attempt {attempt}")
    return index * 2


def _always_fail(task):
    raise ValueError("poisoned")


class TestSupervisedMap:
    def test_argument_validation(self):
        with pytest.raises(ValueError, match="partition_timeout"):
            supervised_map(
                _double, 1, workers=2, serial_runner=_double_serial,
                stage="t", partition_timeout=0.0,
            )
        with pytest.raises(ValueError, match="max_retries"):
            supervised_map(
                _double, 1, workers=2, serial_runner=_double_serial,
                stage="t", max_retries=-1,
            )

    def test_empty_task_list(self):
        results, report = supervised_map(
            _double, 0, workers=2, serial_runner=_double_serial, stage="t"
        )
        assert results == []
        assert report.tasks == 0 and report.clean

    @fork_only
    def test_clean_run(self):
        results, report = supervised_map(
            _double, 6, workers=2, serial_runner=_double_serial, stage="t"
        )
        assert results == [0, 2, 4, 6, 8, 10]
        assert report.clean
        assert report.to_dict()["fallback_tasks"] == []

    @fork_only
    def test_worker_errors_are_retried(self):
        results, report = supervised_map(
            _fail_on_first_attempt, 4, workers=2,
            serial_runner=_double_serial, stage="t", backoff=0.001,
        )
        assert results == [0, 2, 4, 6]
        assert report.worker_errors == 4
        assert report.retries == 4
        assert report.fallbacks == 0

    @fork_only
    def test_poisoned_tasks_fall_back_serially(self):
        results, report = supervised_map(
            _always_fail, 3, workers=2,
            serial_runner=_double_serial, stage="t",
            max_retries=1, backoff=0.001,
        )
        assert results == [0, 2, 4]
        assert report.fallbacks == 3
        assert sorted(report.fallback_tasks) == [0, 1, 2]
        # attempts = max_retries + 1 per task
        assert report.retries == 3


# ----------------------------------------------------------------------
# executor chaos schedules
# ----------------------------------------------------------------------
@fork_only
class TestFindRelationChaos:
    def test_crash_on_first_attempt(self, scenario, serial_run):
        with failpoints.inject({"worker.crash": "times:1"}):
            run = _chaos_find(scenario, partition_timeout=30.0, max_retries=2)
        assert run.results == serial_run.results
        assert run.stats.relation_counts == serial_run.stats.relation_counts
        assert run.supervision.worker_deaths == run.partitions
        assert run.supervision.retries == run.partitions
        assert run.supervision.fallbacks == 0
        assert executor._STATE == {}

    def test_hang_past_deadline(self, scenario, serial_run):
        failpoints.arm("worker.hang", "times:1", hang_seconds=30.0)
        start = time.monotonic()
        run = _chaos_find(scenario, partition_timeout=0.5, max_retries=2)
        wall = time.monotonic() - start
        assert run.results == serial_run.results
        assert run.supervision.timeouts >= run.partitions
        # Bounded: nowhere near the 30s hang, even with retries queued.
        assert wall < 15.0
        assert executor._STATE == {}

    def test_always_crash_exhausts_to_serial_fallback(self, scenario, serial_run):
        with failpoints.inject({"worker.crash": "always"}):
            run = _chaos_find(scenario, partition_timeout=30.0, max_retries=1)
        assert run.results == serial_run.results
        assert run.supervision.fallbacks == run.partitions
        assert executor._STATE == {}

    def test_crash_probabilistically(self, scenario, serial_run):
        with failpoints.inject({"worker.crash": "prob:0.5"}, seed=11):
            run = _chaos_find(scenario, partition_timeout=30.0, max_retries=3)
        assert run.results == serial_run.results
        assert executor._STATE == {}

    def test_metrics_counters_emitted(self, scenario, serial_run):
        set_metrics(True)
        reset_metrics()
        try:
            with failpoints.inject({"worker.crash": "times:1"}):
                run = _chaos_find(scenario, partition_timeout=30.0, max_retries=2)
            counters = get_registry().counter_values()
            deaths = counters.get(
                'repro_resilience_worker_deaths_total{stage="find"}', 0
            )
            retries = counters.get(
                'repro_resilience_retry_total{kind="death",stage="find"}', 0
            )
            assert deaths == run.partitions
            assert retries == run.partitions
            # Obs exactly-once: the merged relation counters must equal
            # the serial ones despite every partition running twice.
            assert run.stats.relation_counts == serial_run.stats.relation_counts
        finally:
            set_metrics(False)
            reset_metrics()


@fork_only
class TestRelateChaos:
    def test_crash_matches_serial(self, scenario):
        serial = run_relate_parallel(
            T.INTERSECTS, scenario.r_objects, scenario.s_objects, scenario.pairs,
            workers=1,
        )
        with failpoints.inject({"worker.crash": "times:1"}):
            run = run_relate_parallel(
                T.INTERSECTS, scenario.r_objects, scenario.s_objects, scenario.pairs,
                workers=2, chunk_size=max(1, len(scenario.pairs) // 6),
                partition_timeout=30.0, max_retries=2,
            )
        assert run.matches == serial.matches
        assert run.supervision.worker_deaths == run.partitions
        assert executor._STATE == {}


@fork_only
class TestPreprocessChaos:
    def test_crash_matches_serial_build(self, scenario):
        polygons = [obj.polygon for obj in scenario.r_objects]
        grid = scenario.grid
        expected = [build_april(p, grid) for p in polygons]
        with failpoints.inject({"worker.crash": "times:1"}):
            built = build_april_parallel(
                polygons, grid, workers=2, partition_timeout=30.0, max_retries=2
            )
        assert len(built) == len(expected)
        for a, b in zip(built, expected):
            assert (a.p.starts == b.p.starts).all()
            assert (a.p.ends == b.p.ends).all()
            assert (a.c.starts == b.c.starts).all()
        assert preprocess._STATE == {}

    def test_poisoned_preprocess_falls_back(self, scenario):
        polygons = [obj.polygon for obj in scenario.r_objects]
        grid = scenario.grid
        expected = [build_april(p, grid) for p in polygons]
        with failpoints.inject({"worker.crash": "always"}):
            built = build_april_parallel(
                polygons, grid, workers=2, partition_timeout=30.0, max_retries=0
            )
        assert len(built) == len(expected)
        assert (built[0].p.starts == expected[0].p.starts).all()
        assert preprocess._STATE == {}


class TestStateLifecycle:
    def test_serial_paths_leave_state_empty(self, scenario):
        run_find_relation_parallel(
            "P+C", scenario.r_objects, scenario.s_objects, scenario.pairs, workers=1
        )
        assert executor._STATE == {}
        build_april_parallel(
            [obj.polygon for obj in scenario.r_objects[:4]], scenario.grid, workers=1
        )
        assert preprocess._STATE == {}

    @fork_only
    def test_parallel_paths_leave_state_empty(self, scenario):
        _chaos_find(scenario)
        assert executor._STATE == {}
        build_april_parallel(
            [obj.polygon for obj in scenario.r_objects], scenario.grid, workers=2
        )
        assert preprocess._STATE == {}

    def test_supervision_report_shape(self):
        report = SupervisionReport(tasks=3)
        d = report.to_dict()
        assert set(d) == {
            "tasks", "retries", "timeouts", "worker_deaths",
            "worker_errors", "fallbacks", "fallback_tasks",
        }
        assert report.clean
