"""Tests for the varint interval-list codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Box, Polygon
from repro.raster import RasterGrid, build_april
from repro.raster.compression import (
    compression_ratio,
    decode_approximation,
    decode_intervals,
    encode_approximation,
    encode_intervals,
)
from repro.raster.intervals import IntervalList


class TestCodec:
    def test_empty_list(self):
        data = encode_intervals(IntervalList())
        back, pos = decode_intervals(data)
        assert len(back) == 0 and pos == len(data)

    def test_roundtrip_simple(self):
        il = IntervalList([(3, 7), (10, 11), (100000, 100500)])
        back, _ = decode_intervals(encode_intervals(il))
        assert back == il

    def test_concatenated_streams(self):
        a = IntervalList([(1, 5)])
        b = IntervalList([(2, 3), (9, 12)])
        blob = encode_intervals(a) + encode_intervals(b)
        got_a, pos = decode_intervals(blob)
        got_b, pos = decode_intervals(blob, pos)
        assert got_a == a and got_b == b and pos == len(blob)

    def test_truncated_raises(self):
        data = encode_intervals(IntervalList([(5, 9)]))
        with pytest.raises(ValueError):
            decode_intervals(data[:-1])

    @given(st.sets(st.integers(0, 5000), max_size=60))
    @settings(max_examples=120)
    def test_roundtrip_random(self, cells):
        il = IntervalList.from_cells(cells)
        back, pos = decode_intervals(encode_intervals(il))
        assert back == il

    def test_large_ids_no_overflow(self):
        il = IntervalList([(2**40, 2**40 + 17)])
        back, _ = decode_intervals(encode_intervals(il))
        assert back == il


class TestApproximationCodec:
    GRID = RasterGrid(Box(0, 0, 64, 64), order=8)

    def test_roundtrip(self):
        approx = build_april(Polygon.box(5, 5, 30, 30), self.GRID)
        blob = encode_approximation(approx)
        back, pos = decode_approximation(blob, self.GRID)
        assert back.p == approx.p and back.c == approx.c
        assert pos == len(blob)

    def test_compression_beats_plain_storage(self):
        approx = build_april(Polygon.box(5, 5, 60, 60), self.GRID)
        ratio = compression_ratio(approx)
        assert ratio > 2.0  # delta+varint should shrink 16-byte intervals a lot
        assert len(encode_approximation(approx)) < approx.nbytes

    def test_many_objects_blob(self):
        polys = [Polygon.box(i, i, i + 5, i + 5) for i in range(0, 40, 7)]
        approx = [build_april(p, self.GRID) for p in polys]
        blob = b"".join(encode_approximation(a) for a in approx)
        pos = 0
        for a in approx:
            back, pos = decode_approximation(blob, self.GRID, pos)
            assert back.p == a.p and back.c == a.c
        assert pos == len(blob)
