"""Property test: the plane sweep finds the same contacts as brute force."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Polygon
from repro.geometry.segment import segment_intersection
from repro.topology.sweep import boundary_intersections


def boxes_polygons():
    return st.builds(
        lambda x, y, w, h: Polygon.box(x, y, x + w, y + h),
        st.integers(0, 30),
        st.integers(0, 30),
        st.integers(1, 12),
        st.integers(1, 12),
    )


def triangles():
    return st.builds(
        lambda x, y, dx, dy: Polygon([(x, y), (x + dx, y), (x, y + dy)]),
        st.integers(0, 30),
        st.integers(0, 30),
        st.integers(1, 12),
        st.integers(1, 12),
    )


def brute_force_contact(r, s):
    for a1, a2 in r.edges():
        for b1, b2 in s.edges():
            if segment_intersection(a1, a2, b1, b2):
                return True
    return False


def brute_force_points(r, s):
    points = set()
    for a1, a2 in r.edges():
        for b1, b2 in s.edges():
            inter = segment_intersection(a1, a2, b1, b2)
            points.update(inter.points)
    return points


class TestSweepMatchesBruteForce:
    @given(boxes_polygons() | triangles(), boxes_polygons() | triangles())
    @settings(max_examples=200, deadline=None)
    def test_contact_flag(self, r, s):
        assert boundary_intersections(r, s).contact == brute_force_contact(r, s)

    @given(boxes_polygons() | triangles(), boxes_polygons() | triangles())
    @settings(max_examples=120, deadline=None)
    def test_cut_points_superset_of_crossings(self, r, s):
        """Every brute-force intersection point appears among the cuts
        recorded for r (sweep may add endpoints, never miss points)."""
        result = boundary_intersections(r, s)
        recorded = {p for pts in result.cuts_r.values() for p in pts}
        for segs in result.overlaps_r.values():
            for lo, hi in segs:
                recorded.add(lo)
                recorded.add(hi)
        for point in brute_force_points(r, s):
            assert point in recorded
